#include "sim/experiment.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "drtp/failure.h"

namespace drtp::sim {

RunMetrics RunScenario(const net::Topology& topo, const Scenario& scenario,
                       core::RoutingScheme& scheme,
                       const ExperimentConfig& config) {
  const Time duration = scenario.traffic.duration;
  DRTP_CHECK_MSG(config.warmup < duration,
                 "warmup " << config.warmup << " >= duration " << duration);
  DRTP_CHECK(config.sample_interval > 0.0);

  core::DrtpNetwork net(topo, core::NetworkConfig{
                                  .spare_mode = config.spare_mode,
                                  .duplex_failures = false});
  lsdb::LinkStateDb db(topo.num_links(), topo.num_links());

  RunMetrics m;
  m.scheme = scheme.name();
  m.measure_start = config.warmup;
  m.measure_end = duration;

  const bool instant = config.lsdb_refresh_interval <= 0.0;
  net.PublishTo(db, 0.0);
  Time next_refresh = instant ? kTimeInfinity : config.lsdb_refresh_interval;

  // Time-weighted active-connection count over the measurement window.
  TimeWeightedStat window;
  int active_count = 0;
  const auto note_active = [&](Time t, int count) {
    // The measurement window is [warmup, duration]; trailing releases
    // beyond the horizon no longer affect the average.
    const Time clamped = std::min(t, duration);
    if (clamped >= config.warmup) {
      if (!window.started()) window.Set(config.warmup, active_count);
      window.Set(clamped, count);
    }
    active_count = count;
  };

  Time next_sample = config.warmup;
  const auto sample = [&](Time t) {
    m.pbk.Merge(core::EvaluateAllSingleLinkFailures(net));
    m.prime_bw.Add(static_cast<double>(net.ledger().TotalPrime()));
    m.spare_bw.Add(static_cast<double>(net.ledger().TotalSpare()));
    if (config.check_consistency) net.CheckConsistency();
    (void)t;
  };

  std::unordered_set<ConnId> admitted_ids;

  // inspect_final fires once the clock passes the horizon, i.e. on the
  // loaded steady-state network rather than the drained one.
  bool inspected = false;
  const auto maybe_inspect = [&](Time t) {
    if (!inspected && t > duration && config.inspect_final) {
      config.inspect_final(net);
      inspected = true;
    }
  };

  for (const ScenarioEvent& e : scenario.events) {
    maybe_inspect(e.time);
    while (next_sample <= e.time && next_sample <= duration) {
      sample(next_sample);
      next_sample += config.sample_interval;
    }
    while (next_refresh <= e.time) {
      // The periodic refresh is a full re-advertisement by construction
      // (the paper's refresh cycle re-floods everything), and doubles as
      // the incremental path's safety net.
      net.PublishFullTo(db, next_refresh);
      next_refresh += config.lsdb_refresh_interval;
    }

    if (e.type == ScenarioEvent::Type::kRequest) {
      ++m.requests;
      core::RouteSelection sel =
          scheme.SelectRoutes(net, db, e.src, e.dst, e.bw);
      m.control_messages += sel.control_messages;
      m.control_bytes += sel.control_bytes;
      bool ok = false;
      if (sel.primary.has_value() &&
          net.EstablishConnection(e.conn, *sel.primary, e.bw, e.time)) {
        ok = true;
        ++m.admitted;
        admitted_ids.insert(e.conn);
        m.primary_hops.Add(sel.primary->hops());
        if (scheme.wants_backup() && config.num_backups > 0 &&
            sel.backup.has_value()) {
          m.overbooked_hops += net.RegisterBackup(e.conn, *sel.backup);
          ++m.with_backup;
          m.backup_hops.Add(sel.backup->hops());
          m.backup_overlap_links += sel.backup->OverlapCount(*sel.primary);
          if (config.num_backups > 1) {
            core::ProtectConnection(scheme, net, db, e.conn,
                                    config.num_backups);
          }
        }
        note_active(e.time, active_count + 1);
        if (config.trace != nullptr) {
          const core::DrConnection* conn = net.Find(e.conn);
          config.trace->OnAdmit(e.time, e.conn, conn->primary,
                                conn->first_backup());
        }
      }
      if (!ok) {
        ++m.blocked;
        if (config.trace != nullptr) {
          config.trace->OnBlock(e.time, e.conn, e.src, e.dst);
        }
      }
      if (ok && instant) net.PublishTo(db, e.time);
    } else if (e.type == ScenarioEvent::Type::kRelease) {
      // Releases of never-admitted (blocked) connections are no-ops;
      // connections dropped by an earlier failure were already erased.
      if (admitted_ids.erase(e.conn) > 0 && net.Find(e.conn) != nullptr) {
        net.ReleaseConnection(e.conn);
        note_active(e.time, active_count - 1);
        if (config.trace != nullptr) config.trace->OnRelease(e.time, e.conn);
        if (instant) net.PublishTo(db, e.time);
      }
    } else if (e.type == ScenarioEvent::Type::kLinkFail) {
      if (net.IsLinkUp(e.link)) {
        ++m.failures_enacted;
        const core::SwitchoverReport report = core::ApplyLinkFailure(
            net, e.link, e.time, config.num_backups > 0 ? &scheme : nullptr,
            &db);
        m.failover_recovered += static_cast<std::int64_t>(
            report.recovered.size());
        m.failover_dropped += static_cast<std::int64_t>(
            report.dropped.size());
        m.backups_broken += static_cast<std::int64_t>(
            report.backups_lost.size());
        m.backups_reestablished += static_cast<std::int64_t>(
            report.rerouted.size());
        for (ConnId id : report.dropped) admitted_ids.erase(id);
        note_active(e.time, net.ActiveCount());
        if (config.trace != nullptr) {
          config.trace->OnLinkFail(e.time, e.link,
                                   static_cast<int>(report.recovered.size()),
                                   static_cast<int>(report.dropped.size()),
                                   static_cast<int>(
                                       report.backups_lost.size()));
        }
        scheme.OnTopologyChanged(net);
        if (instant) net.PublishTo(db, e.time);
      }
    } else {  // kLinkRepair
      if (!net.IsLinkUp(e.link)) {
        net.SetLinkUp(e.link);
        scheme.OnTopologyChanged(net);
        if (config.trace != nullptr) {
          config.trace->OnLinkRepair(e.time, e.link);
        }
        if (instant) net.PublishTo(db, e.time);
      }
    }
  }
  while (next_sample <= duration) {
    sample(next_sample);
    next_sample += config.sample_interval;
  }
  if (!window.started()) window.Set(config.warmup, active_count);
  m.avg_active = window.Average(duration);

  DRTP_CHECK(m.admitted + m.blocked == m.requests);
  if (config.check_consistency) net.CheckConsistency();
  if (!inspected && config.inspect_final) config.inspect_final(net);
  return m;
}

}  // namespace drtp::sim
