#include "sim/experiment.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "drtp/failure.h"
#include "obs/metrics.h"

namespace drtp::sim {
namespace {

/// Process-wide lifecycle counters (drtp.sim.*), resolved once. These
/// feed the sweep ProgressReporter's live readout and per-cell snapshot
/// tags; under DRTP_OBS_DISABLED every Add is a no-op.
struct SimCounters {
  obs::Counter requests = obs::GetCounter("drtp.sim.requests");
  obs::Counter admits = obs::GetCounter("drtp.sim.admits");
  obs::Counter blocks = obs::GetCounter("drtp.sim.blocks");
  obs::Counter releases = obs::GetCounter("drtp.sim.releases");
  obs::Counter link_fails = obs::GetCounter("drtp.sim.link_fails");
  obs::Counter link_repairs = obs::GetCounter("drtp.sim.link_repairs");
  obs::Counter failovers = obs::GetCounter("drtp.sim.failovers");
  obs::Counter drops = obs::GetCounter("drtp.sim.drops");
  obs::Counter backup_breaks = obs::GetCounter("drtp.sim.backup_breaks");
  obs::Counter reestablishes =
      obs::GetCounter("drtp.sim.backups_reestablished");
};

const SimCounters& Counters() {
  static const SimCounters counters;
  return counters;
}

}  // namespace

RunMetrics RunScenario(const net::Topology& topo, const Scenario& scenario,
                       core::RoutingScheme& scheme,
                       const ExperimentConfig& config) {
  const Time duration = scenario.traffic.duration;
  DRTP_CHECK_MSG(config.warmup < duration,
                 "warmup " << config.warmup << " >= duration " << duration);
  DRTP_CHECK(config.sample_interval > 0.0);

  core::DrtpNetwork net(topo, core::NetworkConfig{
                                  .spare_mode = config.spare_mode,
                                  .duplex_failures = false});
  lsdb::LinkStateDb db(topo.num_links(), topo.num_links());

  RunMetrics m;
  m.scheme = scheme.name();
  m.measure_start = config.warmup;
  m.measure_end = duration;

  const bool instant = config.lsdb_refresh_interval <= 0.0;
  net.PublishTo(db, 0.0);
  Time next_refresh = instant ? kTimeInfinity : config.lsdb_refresh_interval;

  // Time-weighted active-connection count over the measurement window.
  TimeWeightedStat window;
  int active_count = 0;
  const auto note_active = [&](Time t, int count) {
    // The measurement window is [warmup, duration]; trailing releases
    // beyond the horizon no longer affect the average.
    const Time clamped = std::min(t, duration);
    if (clamped >= config.warmup) {
      if (!window.started()) window.Set(config.warmup, active_count);
      window.Set(clamped, count);
    }
    active_count = count;
  };

  Time next_sample = config.warmup;
  const auto sample = [&](Time t) {
    m.pbk.Merge(core::EvaluateAllSingleLinkFailures(net));
    m.prime_bw.Add(static_cast<double>(net.ledger().TotalPrime()));
    m.spare_bw.Add(static_cast<double>(net.ledger().TotalSpare()));
    if (config.check_consistency) net.CheckConsistency();
    (void)t;
  };

  std::unordered_set<ConnId> admitted_ids;

  // Scratch for the per-link APLV annotations attached to admit /
  // reestablish trace records; only filled when tracing is on.
  std::vector<std::pair<LinkId, std::int32_t>> aplv_scratch;
  const auto backup_aplv = [&](const routing::Path& b) -> BackupAplv {
    aplv_scratch.clear();
    for (const LinkId l : b.links()) {
      aplv_scratch.emplace_back(l, net.aplv(l).Max());
    }
    return aplv_scratch;
  };

  // inspect_final fires once the clock passes the horizon, i.e. on the
  // loaded steady-state network rather than the drained one.
  bool inspected = false;
  const auto maybe_inspect = [&](Time t) {
    if (!inspected && t > duration && config.inspect_final) {
      config.inspect_final(net);
      inspected = true;
    }
  };

  for (const ScenarioEvent& e : scenario.events) {
    maybe_inspect(e.time);
    while (next_sample <= e.time && next_sample <= duration) {
      sample(next_sample);
      next_sample += config.sample_interval;
    }
    while (next_refresh <= e.time) {
      // The periodic refresh is a full re-advertisement by construction
      // (the paper's refresh cycle re-floods everything), and doubles as
      // the incremental path's safety net.
      net.PublishFullTo(db, next_refresh);
      next_refresh += config.lsdb_refresh_interval;
    }

    if (e.type == ScenarioEvent::Type::kRequest) {
      ++m.requests;
      Counters().requests.Add();
      if (config.trace != nullptr) {
        config.trace->OnRequest(e.time, e.conn, e.src, e.dst, e.bw);
      }
      core::RouteSelection sel =
          scheme.SelectRoutes(net, db, e.src, e.dst, e.bw);
      m.control_messages += sel.control_messages;
      m.control_bytes += sel.control_bytes;
      bool ok = false;
      if (sel.primary.has_value() &&
          net.EstablishConnection(e.conn, *sel.primary, e.bw, e.time)) {
        ok = true;
        ++m.admitted;
        admitted_ids.insert(e.conn);
        m.primary_hops.Add(sel.primary->hops());
        if (scheme.wants_backup() && config.num_backups > 0 &&
            sel.backup.has_value()) {
          m.overbooked_hops += net.RegisterBackup(e.conn, *sel.backup);
          ++m.with_backup;
          m.backup_hops.Add(sel.backup->hops());
          m.backup_overlap_links += sel.backup->OverlapCount(*sel.primary);
          if (config.num_backups > 1) {
            core::ProtectConnection(scheme, net, db, e.conn,
                                    config.num_backups);
          }
        }
        note_active(e.time, active_count + 1);
        Counters().admits.Add();
        if (config.trace != nullptr) {
          const core::DrConnection* conn = net.Find(e.conn);
          const routing::Path* backup = conn->first_backup();
          config.trace->OnAdmit(e.time, e.conn, conn->primary, backup,
                                e.bw,
                                backup != nullptr ? backup_aplv(*backup)
                                                  : BackupAplv{});
        }
      }
      if (!ok) {
        ++m.blocked;
        Counters().blocks.Add();
        if (config.trace != nullptr) {
          config.trace->OnBlock(e.time, e.conn, e.src, e.dst);
        }
      }
      if (ok && instant) net.PublishTo(db, e.time);
    } else if (e.type == ScenarioEvent::Type::kRelease) {
      // Releases of never-admitted (blocked) connections are no-ops;
      // connections dropped by an earlier failure were already erased.
      if (admitted_ids.erase(e.conn) > 0 && net.Find(e.conn) != nullptr) {
        net.ReleaseConnection(e.conn);
        note_active(e.time, active_count - 1);
        Counters().releases.Add();
        if (config.trace != nullptr) config.trace->OnRelease(e.time, e.conn);
        if (instant) net.PublishTo(db, e.time);
      }
    } else if (e.type == ScenarioEvent::Type::kLinkFail) {
      if (net.IsLinkUp(e.link)) {
        ++m.failures_enacted;
        const core::SwitchoverReport report = core::ApplyLinkFailure(
            net, e.link, e.time, config.num_backups > 0 ? &scheme : nullptr,
            &db);
        m.failover_recovered += static_cast<std::int64_t>(
            report.recovered.size());
        m.failover_dropped += static_cast<std::int64_t>(
            report.dropped.size());
        m.backups_broken += static_cast<std::int64_t>(
            report.backups_lost.size());
        m.backups_reestablished += static_cast<std::int64_t>(
            report.rerouted.size());
        for (ConnId id : report.dropped) admitted_ids.erase(id);
        note_active(e.time, net.ActiveCount());
        Counters().link_fails.Add();
        Counters().failovers.Add(
            static_cast<std::int64_t>(report.recovered.size()));
        Counters().drops.Add(
            static_cast<std::int64_t>(report.dropped.size()));
        Counters().backup_breaks.Add(
            static_cast<std::int64_t>(report.backups_lost.size()));
        Counters().reestablishes.Add(
            static_cast<std::int64_t>(report.rerouted.size()));
        if (config.trace != nullptr) {
          config.trace->OnLinkFail(e.time, e.link,
                                   static_cast<int>(report.recovered.size()),
                                   static_cast<int>(report.dropped.size()),
                                   static_cast<int>(
                                       report.backups_lost.size()));
          // The aggregate line is followed by the per-connection
          // consequences, in the report's (deterministic) order.
          for (const ConnId id : report.recovered) {
            const core::DrConnection* conn = net.Find(id);
            if (conn != nullptr) {
              config.trace->OnFailover(e.time, id, conn->primary);
            }
          }
          for (const ConnId id : report.dropped) {
            config.trace->OnDrop(e.time, id);
          }
          for (const ConnId id : report.backups_lost) {
            config.trace->OnBackupBreak(e.time, id);
          }
          for (const ConnId id : report.rerouted) {
            const core::DrConnection* conn = net.Find(id);
            const routing::Path* backup =
                conn != nullptr ? conn->first_backup() : nullptr;
            if (backup != nullptr) {
              config.trace->OnReestablish(e.time, id, *backup,
                                          backup_aplv(*backup));
            }
          }
        }
        scheme.OnTopologyChanged(net);
        if (instant) net.PublishTo(db, e.time);
      }
    } else {  // kLinkRepair
      if (!net.IsLinkUp(e.link)) {
        net.SetLinkUp(e.link);
        Counters().link_repairs.Add();
        scheme.OnTopologyChanged(net);
        if (config.trace != nullptr) {
          config.trace->OnLinkRepair(e.time, e.link);
        }
        if (instant) net.PublishTo(db, e.time);
      }
    }
  }
  while (next_sample <= duration) {
    sample(next_sample);
    next_sample += config.sample_interval;
  }
  if (!window.started()) window.Set(config.warmup, active_count);
  m.avg_active = window.Average(duration);

  DRTP_CHECK(m.admitted + m.blocked == m.requests);
  if (config.check_consistency) net.CheckConsistency();
  if (!inspected && config.inspect_final) config.inspect_final(net);
  return m;
}

}  // namespace drtp::sim
