#include "sim/experiment.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "drtp/admission.h"
#include "drtp/failure.h"
#include "obs/metrics.h"

namespace drtp::sim {
namespace {

/// Process-wide lifecycle counters (drtp.sim.*), resolved once. These
/// feed the sweep ProgressReporter's live readout and per-cell snapshot
/// tags; under DRTP_OBS_DISABLED every Add is a no-op.
struct SimCounters {
  obs::Counter requests = obs::GetCounter("drtp.sim.requests");
  obs::Counter admits = obs::GetCounter("drtp.sim.admits");
  obs::Counter blocks = obs::GetCounter("drtp.sim.blocks");
  obs::Counter releases = obs::GetCounter("drtp.sim.releases");
  obs::Counter link_fails = obs::GetCounter("drtp.sim.link_fails");
  obs::Counter link_repairs = obs::GetCounter("drtp.sim.link_repairs");
  obs::Counter failovers = obs::GetCounter("drtp.sim.failovers");
  obs::Counter drops = obs::GetCounter("drtp.sim.drops");
  obs::Counter backup_breaks = obs::GetCounter("drtp.sim.backup_breaks");
  obs::Counter reestablishes =
      obs::GetCounter("drtp.sim.backups_reestablished");
  obs::Counter node_fails = obs::GetCounter("drtp.sim.node_fails");
  obs::Counter node_repairs = obs::GetCounter("drtp.sim.node_repairs");
  obs::Counter srlg_fails = obs::GetCounter("drtp.sim.srlg_fails");
  obs::Counter srlg_repairs = obs::GetCounter("drtp.sim.srlg_repairs");
  obs::Counter degraded = obs::GetCounter("drtp.sim.degraded");
  obs::Counter reprotect_retries =
      obs::GetCounter("drtp.sim.reprotect_retries");
  obs::Counter reprotects = obs::GetCounter("drtp.sim.reprotects");
};

const SimCounters& Counters() {
  static const SimCounters counters;
  return counters;
}

std::string_view EventLabel(ScenarioEvent::Type type) {
  switch (type) {
    case ScenarioEvent::Type::kRequest:
      return "request";
    case ScenarioEvent::Type::kRelease:
      return "release";
    case ScenarioEvent::Type::kLinkFail:
      return "link_fail";
    case ScenarioEvent::Type::kLinkRepair:
      return "link_repair";
    case ScenarioEvent::Type::kNodeFail:
      return "node_fail";
    case ScenarioEvent::Type::kNodeRepair:
      return "node_repair";
    case ScenarioEvent::Type::kSrlgFail:
      return "srlg_fail";
    case ScenarioEvent::Type::kSrlgRepair:
      return "srlg_repair";
  }
  return "?";
}

}  // namespace

RunMetrics RunScenario(const net::Topology& topo, const Scenario& scenario,
                       core::RoutingScheme& scheme,
                       const ExperimentConfig& config) {
  const Time duration = scenario.traffic.duration;
  DRTP_CHECK_MSG(config.warmup < duration,
                 "warmup " << config.warmup << " >= duration " << duration);
  DRTP_CHECK(config.sample_interval > 0.0);
  // Reject scenario/topology mismatches (a trace generated for a bigger
  // graph, an SRLG id past this topology's groups) as ParseError up front
  // — bad input, not a mid-replay invariant trip.
  scenario.Validate(topo);

  core::DrtpNetwork net(topo, core::NetworkConfig{
                                  .spare_mode = config.spare_mode,
                                  .duplex_failures = false});
  lsdb::LinkStateDb db(topo.num_links(), topo.num_links());

  RunMetrics m;
  m.scheme = scheme.name();
  m.measure_start = config.warmup;
  m.measure_end = duration;

  const bool instant = config.lsdb_refresh_interval <= 0.0;
  net.PublishTo(db, 0.0);
  Time next_refresh = instant ? kTimeInfinity : config.lsdb_refresh_interval;

  // Time-weighted active-connection count over the measurement window.
  TimeWeightedStat window;
  int active_count = 0;
  const auto note_active = [&](Time t, int count) {
    // The measurement window is [warmup, duration]; trailing releases
    // beyond the horizon no longer affect the average.
    const Time clamped = std::min(t, duration);
    if (clamped >= config.warmup) {
      if (!window.started()) window.Set(config.warmup, active_count);
      window.Set(clamped, count);
    }
    active_count = count;
  };

  Time next_sample = config.warmup;
  const auto sample = [&](Time t) {
    m.pbk.Merge(core::EvaluateAllSingleLinkFailures(net));
    if (topo.has_srlgs()) m.pbk_srlg.Merge(core::EvaluateSrlgSurvival(net));
    m.prime_bw.Add(static_cast<double>(net.ledger().TotalPrime()));
    m.spare_bw.Add(static_cast<double>(net.ledger().TotalSpare()));
    if (config.check_consistency) net.CheckConsistency();
    (void)t;
  };

  std::unordered_set<ConnId> admitted_ids;

  // Scratch for the per-link APLV annotations attached to admit /
  // reestablish trace records; only filled when tracing is on.
  std::vector<std::pair<LinkId, std::int32_t>> aplv_scratch;
  const auto backup_aplv = [&](const routing::Path& b) -> BackupAplv {
    aplv_scratch.clear();
    for (const LinkId l : b.links()) {
      aplv_scratch.emplace_back(l, net.aplv(l).Max());
    }
    return aplv_scratch;
  };

  // inspect_final fires once the clock passes the horizon, i.e. on the
  // loaded steady-state network rather than the drained one.
  bool inspected = false;
  const auto maybe_inspect = [&](Time t) {
    if (!inspected && t > duration && config.inspect_final) {
      config.inspect_final(net);
      inspected = true;
    }
  };

  const bool protecting = scheme.wants_backup() && config.num_backups > 0;
  core::RoutingScheme* reroute =
      config.num_backups > 0 ? &scheme : nullptr;

  // --- graceful degradation: bounded jittered-backoff re-protection --------
  // Connections whose step-4 re-protection found no feasible backup keep
  // running *unprotected* and retry with exponential backoff; the jitter
  // decorrelates retries after a burst without losing determinism.
  Rng reprotect_rng(config.reprotect_seed ^ scenario.traffic.seed);
  struct Reprotect {
    Time at = 0.0;
    std::int64_t seq = 0;  // FIFO tie-break at equal times
    ConnId conn = kInvalidConn;
    int attempt = 1;
  };
  const auto retry_after = [](const Reprotect& a, const Reprotect& b) {
    return a.at > b.at || (a.at == b.at && a.seq > b.seq);
  };
  std::vector<Reprotect> retries;  // min-heap on (at, seq)
  std::int64_t retry_seq = 0;
  // Connections currently degraded (admitted, protection wanted, no
  // backup). Guards against double-counting when overlapping failures hit
  // the same connection again while it is still exposed.
  std::unordered_set<ConnId> degraded_pending;

  const auto schedule_retry = [&](ConnId id, int attempt, Time from) {
    const double nominal =
        config.reprotect_backoff * std::ldexp(1.0, attempt - 1);
    retries.push_back(
        Reprotect{.at = from + nominal * reprotect_rng.UniformReal(0.5, 1.5),
                  .seq = retry_seq++,
                  .conn = id,
                  .attempt = attempt});
    std::push_heap(retries.begin(), retries.end(), retry_after);
  };

  const auto handle_retry = [&](const Reprotect& r) {
    const core::DrConnection* conn = net.Find(r.conn);
    if (conn == nullptr || conn->has_backup()) {
      // Released, dropped, or re-protected by a later failure's step 4.
      degraded_pending.erase(r.conn);
      return;
    }
    ++m.reprotect_retries;
    Counters().reprotect_retries.Add();
    net.PublishTo(db, r.at);
    auto backup = scheme.SelectBackupFor(net, db, conn->primary, conn->bw);
    const bool usable =
        backup.has_value() &&
        backup->OverlapCount(conn->primary) < conn->primary.hops() &&
        std::all_of(backup->links().begin(), backup->links().end(),
                    [&](LinkId l) { return net.IsLinkUp(l); });
    if (usable) {
      m.overbooked_hops += net.RegisterBackup(r.conn, *backup);
      ++m.reprotect_recovered;
      Counters().reprotects.Add();
      degraded_pending.erase(r.conn);
      if (config.trace != nullptr) {
        config.trace->OnReestablish(r.at, r.conn, *backup,
                                    backup_aplv(*backup));
      }
    } else if (r.attempt < config.reprotect_max_retries) {
      schedule_retry(r.conn, r.attempt + 1, r.at);
    } else {
      ++m.reprotect_exhausted;
      degraded_pending.erase(r.conn);
    }
    if (config.after_event) {
      config.after_event(net, r.at, "reprotect_retry", nullptr);
    }
  };

  // Marks every connection the failure left admitted-but-unprotected and
  // schedules its first re-protection retry.
  const auto mark_degraded = [&](Time t,
                                 const core::SwitchoverReport& report) {
    if (!protecting) return;
    for (const std::vector<ConnId>* ids :
         {&report.recovered, &report.backups_lost}) {
      for (const ConnId id : *ids) {
        const core::DrConnection* conn = net.Find(id);
        if (conn == nullptr || conn->has_backup()) continue;
        if (!degraded_pending.insert(id).second) continue;
        ++m.degraded;
        Counters().degraded.Add();
        if (config.trace != nullptr) {
          config.trace->OnDegrade(t, id, config.reprotect_max_retries);
        }
        if (config.reprotect_max_retries > 0) {
          schedule_retry(id, 1, t);
        }
      }
    }
  };

  // Shared failure bookkeeping: metrics, counters, per-connection trace
  // fan-out, degradation marking, scheme + LSDB refresh. The caller has
  // already emitted the aggregate trace line for its failure kind.
  const auto fanout_failure = [&](Time t,
                                  const core::SwitchoverReport& report) {
    m.failover_recovered +=
        static_cast<std::int64_t>(report.recovered.size());
    m.failover_dropped += static_cast<std::int64_t>(report.dropped.size());
    m.backups_broken +=
        static_cast<std::int64_t>(report.backups_lost.size());
    m.backups_reestablished +=
        static_cast<std::int64_t>(report.rerouted.size());
    for (const ConnId id : report.dropped) {
      admitted_ids.erase(id);
      degraded_pending.erase(id);
    }
    for (const ConnId id : report.rerouted) degraded_pending.erase(id);
    note_active(t, net.ActiveCount());
    Counters().failovers.Add(
        static_cast<std::int64_t>(report.recovered.size()));
    Counters().drops.Add(static_cast<std::int64_t>(report.dropped.size()));
    Counters().backup_breaks.Add(
        static_cast<std::int64_t>(report.backups_lost.size()));
    Counters().reestablishes.Add(
        static_cast<std::int64_t>(report.rerouted.size()));
    if (config.trace != nullptr) {
      // Per-connection consequences, in the report's (deterministic)
      // order, following the aggregate line.
      for (const ConnId id : report.recovered) {
        const core::DrConnection* conn = net.Find(id);
        if (conn != nullptr) {
          config.trace->OnFailover(t, id, conn->primary);
        }
      }
      for (const ConnId id : report.dropped) {
        config.trace->OnDrop(t, id);
      }
      for (const ConnId id : report.backups_lost) {
        config.trace->OnBackupBreak(t, id);
      }
      for (const ConnId id : report.rerouted) {
        const core::DrConnection* conn = net.Find(id);
        const routing::Path* backup =
            conn != nullptr ? conn->first_backup() : nullptr;
        if (backup != nullptr) {
          config.trace->OnReestablish(t, id, *backup, backup_aplv(*backup));
        }
      }
    }
    mark_degraded(t, report);
    scheme.OnTopologyChanged(net);
    if (instant) net.PublishTo(db, t);
  };

  // Links taken down by an enacted node / SRLG failure, so the matching
  // repair restores exactly that set (members already down beforehand —
  // e.g. from an overlapping link failure — keep their own repair event).
  std::unordered_map<NodeId, std::vector<LinkId>> node_downed;
  std::unordered_map<SrlgId, std::vector<LinkId>> srlg_downed;

  // Restores whichever of `links` are still down; true if any came up.
  const auto repair_links = [&](const std::vector<LinkId>& links) {
    bool any = false;
    for (const LinkId l : links) {
      if (!net.IsLinkUp(l)) {
        net.SetLinkUp(l);
        any = true;
      }
    }
    return any;
  };

  for (const ScenarioEvent& e : scenario.events) {
    maybe_inspect(e.time);
    // Interleave P_bk samples and due re-protection retries in time order
    // up to this event.
    while (true) {
      const Time ts = next_sample <= duration ? next_sample : kTimeInfinity;
      const Time tr = retries.empty() ? kTimeInfinity : retries.front().at;
      if (ts > e.time && tr > e.time) break;
      if (tr <= ts) {
        std::pop_heap(retries.begin(), retries.end(), retry_after);
        const Reprotect r = retries.back();
        retries.pop_back();
        handle_retry(r);
      } else {
        sample(next_sample);
        next_sample += config.sample_interval;
      }
    }
    while (next_refresh <= e.time) {
      // The periodic refresh is a full re-advertisement by construction
      // (the paper's refresh cycle re-floods everything), and doubles as
      // the incremental path's safety net.
      net.PublishFullTo(db, next_refresh);
      next_refresh += config.lsdb_refresh_interval;
    }

    // Non-null for enacted failures when after_event fires below.
    std::optional<core::SwitchoverReport> event_report;

    if (e.type == ScenarioEvent::Type::kRequest) {
      ++m.requests;
      Counters().requests.Add();
      if (config.trace != nullptr) {
        config.trace->OnRequest(e.time, e.conn, e.src, e.dst, e.bw);
      }
      // The admission sequence itself (route discovery, establishment,
      // vacuous-backup shun, backup registration) lives in
      // core::AdmitConnection, shared with the daemon so that replaying a
      // daemon request log here reproduces the same state.
      const core::AdmitOutcome out = core::AdmitConnection(
          scheme, net, db, e.conn, e.src, e.dst, e.bw, e.time,
          core::AdmitOptions{.num_backups = config.num_backups});
      m.control_messages += out.control_messages;
      m.control_bytes += out.control_bytes;
      if (out.admitted) {
        ++m.admitted;
        admitted_ids.insert(e.conn);
        m.primary_hops.Add(out.primary->hops());
        if (out.backup.has_value()) {
          m.overbooked_hops += out.overbooked_hops;
          ++m.with_backup;
          m.backup_hops.Add(out.backup->hops());
          m.backup_overlap_links += out.backup->OverlapCount(*out.primary);
        }
        note_active(e.time, active_count + 1);
        Counters().admits.Add();
        if (config.trace != nullptr) {
          const core::DrConnection* conn = net.Find(e.conn);
          const routing::Path* backup = conn->first_backup();
          config.trace->OnAdmit(e.time, e.conn, conn->primary, backup,
                                e.bw,
                                backup != nullptr ? backup_aplv(*backup)
                                                  : BackupAplv{});
        }
        if (instant) net.PublishTo(db, e.time);
      } else {
        ++m.blocked;
        Counters().blocks.Add();
        if (config.trace != nullptr) {
          config.trace->OnBlock(e.time, e.conn, e.src, e.dst);
        }
      }
    } else if (e.type == ScenarioEvent::Type::kRelease) {
      // Releases of never-admitted (blocked) connections are no-ops;
      // connections dropped by an earlier failure were already erased.
      if (admitted_ids.erase(e.conn) > 0 && net.Find(e.conn) != nullptr) {
        net.ReleaseConnection(e.conn);
        note_active(e.time, active_count - 1);
        Counters().releases.Add();
        if (config.trace != nullptr) config.trace->OnRelease(e.time, e.conn);
        if (instant) net.PublishTo(db, e.time);
      }
    } else if (e.type == ScenarioEvent::Type::kLinkFail) {
      if (net.IsLinkUp(e.link)) {
        ++m.failures_enacted;
        event_report =
            core::ApplyLinkFailure(net, e.link, e.time, reroute, &db);
        Counters().link_fails.Add();
        if (config.trace != nullptr) {
          config.trace->OnLinkFail(
              e.time, e.link,
              static_cast<int>(event_report->recovered.size()),
              static_cast<int>(event_report->dropped.size()),
              static_cast<int>(event_report->backups_lost.size()));
        }
        fanout_failure(e.time, *event_report);
      }
    } else if (e.type == ScenarioEvent::Type::kLinkRepair) {
      if (!net.IsLinkUp(e.link)) {
        net.SetLinkUp(e.link);
        Counters().link_repairs.Add();
        scheme.OnTopologyChanged(net);
        if (config.trace != nullptr) {
          config.trace->OnLinkRepair(e.time, e.link);
        }
        if (instant) net.PublishTo(db, e.time);
      }
    } else if (e.type == ScenarioEvent::Type::kNodeFail) {
      // Range-checked by scenario.Validate above.
      std::vector<LinkId> taking_down;
      for (const LinkId l : core::IncidentLinks(topo, e.node)) {
        if (net.IsLinkUp(l)) taking_down.push_back(l);
      }
      if (!taking_down.empty()) {
        ++m.failures_enacted;
        event_report = core::ApplyLinkSetFailure(net, taking_down, e.time,
                                                 reroute, &db);
        node_downed[e.node] = std::move(taking_down);
        Counters().node_fails.Add();
        if (config.trace != nullptr) {
          config.trace->OnNodeFail(
              e.time, e.node,
              static_cast<int>(event_report->recovered.size()),
              static_cast<int>(event_report->dropped.size()),
              static_cast<int>(event_report->backups_lost.size()));
        }
        fanout_failure(e.time, *event_report);
      }
    } else if (e.type == ScenarioEvent::Type::kNodeRepair) {
      const auto it = node_downed.find(e.node);
      if (it != node_downed.end()) {
        const bool any = repair_links(it->second);
        node_downed.erase(it);
        if (any) {
          Counters().node_repairs.Add();
          scheme.OnTopologyChanged(net);
          if (config.trace != nullptr) {
            config.trace->OnNodeRepair(e.time, e.node);
          }
          if (instant) net.PublishTo(db, e.time);
        }
      }
    } else if (e.type == ScenarioEvent::Type::kSrlgFail) {
      // Range-checked by scenario.Validate above.
      std::vector<LinkId> taking_down;
      for (const LinkId l : topo.LinksInSrlg(e.srlg)) {
        if (net.IsLinkUp(l)) taking_down.push_back(l);
      }
      if (!taking_down.empty()) {
        ++m.failures_enacted;
        event_report = core::ApplyLinkSetFailure(net, taking_down, e.time,
                                                 reroute, &db);
        srlg_downed[e.srlg] = std::move(taking_down);
        Counters().srlg_fails.Add();
        if (config.trace != nullptr) {
          config.trace->OnSrlgFail(
              e.time, e.srlg,
              static_cast<int>(event_report->recovered.size()),
              static_cast<int>(event_report->dropped.size()),
              static_cast<int>(event_report->backups_lost.size()));
        }
        fanout_failure(e.time, *event_report);
      }
    } else {  // kSrlgRepair
      const auto it = srlg_downed.find(e.srlg);
      if (it != srlg_downed.end()) {
        const bool any = repair_links(it->second);
        srlg_downed.erase(it);
        if (any) {
          Counters().srlg_repairs.Add();
          scheme.OnTopologyChanged(net);
          if (config.trace != nullptr) {
            config.trace->OnSrlgRepair(e.time, e.srlg);
          }
          if (instant) net.PublishTo(db, e.time);
        }
      }
    }

    if (config.after_event) {
      config.after_event(net, e.time, EventLabel(e.type),
                         event_report.has_value() ? &*event_report
                                                  : nullptr);
    }
  }
  // Drain trailing samples and any retries scheduled before the horizon,
  // still in time order.
  while (true) {
    const Time ts = next_sample <= duration ? next_sample : kTimeInfinity;
    const Time tr = retries.empty() ? kTimeInfinity : retries.front().at;
    if (ts > duration && tr > duration) break;
    if (tr <= ts) {
      std::pop_heap(retries.begin(), retries.end(), retry_after);
      const Reprotect r = retries.back();
      retries.pop_back();
      handle_retry(r);
    } else {
      sample(next_sample);
      next_sample += config.sample_interval;
    }
  }
  if (!window.started()) window.Set(config.warmup, active_count);
  m.avg_active = window.Average(duration);
  if (config.after_event) {
    config.after_event(net, duration, "final", nullptr);
  }

  DRTP_CHECK(m.admitted + m.blocked == m.requests);
  if (config.check_consistency) net.CheckConsistency();
  if (!inspected && config.inspect_final) config.inspect_final(net);
  return m;
}

}  // namespace drtp::sim
