// Discrete-event engine.
//
// A minimal, deterministic future-event list: events at equal times run in
// scheduling order. The scenario replayer and the examples drive all state
// changes through this queue.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace drtp::sim {

class EventQueue {
 public:
  /// Schedules `action` at absolute time `t` (>= now).
  void Schedule(Time t, std::function<void()> action) {
    DRTP_CHECK_MSG(t >= now_, "scheduling into the past: " << t << " < "
                                                           << now_);
    heap_.push_back(Item{t, next_seq_++, std::move(action)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Runs the earliest event; false when the queue is empty.
  bool RunNext() {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Item item = std::move(heap_.back());
    heap_.pop_back();
    now_ = item.time;
    item.action();
    return true;
  }

  /// Runs every event with time <= t, then advances the clock to t.
  void RunUntil(Time t) {
    while (!heap_.empty() && heap_.front().time <= t) RunNext();
    if (t > now_) now_ = t;
  }

  /// Drains the queue completely.
  void RunAll() {
    while (RunNext()) {
    }
  }

  Time now() const { return now_; }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Item {
    Time time;
    std::uint64_t seq;
    std::function<void()> action;
  };

  /// Min-heap order on (time, seq): the comparator says "a runs after b",
  /// so std::push_heap/pop_heap keep the earliest event at front().
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // A plain vector managed with the <algorithm> heap primitives instead of
  // std::priority_queue: popping moves the item out of back() — no
  // const_cast of top() required.
  std::vector<Item> heap_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace drtp::sim
