// Discrete-event engine.
//
// A minimal, deterministic future-event list: events at equal times run in
// scheduling order. The scenario replayer and the examples drive all state
// changes through this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace drtp::sim {

class EventQueue {
 public:
  /// Schedules `action` at absolute time `t` (>= now).
  void Schedule(Time t, std::function<void()> action) {
    DRTP_CHECK_MSG(t >= now_, "scheduling into the past: " << t << " < "
                                                           << now_);
    heap_.push(Item{t, next_seq_++, std::move(action)});
  }

  /// Runs the earliest event; false when the queue is empty.
  bool RunNext() {
    if (heap_.empty()) return false;
    // Item::action is not const-qualified for the move below; top() is.
    Item item = std::move(const_cast<Item&>(heap_.top()));
    heap_.pop();
    now_ = item.time;
    item.action();
    return true;
  }

  /// Runs every event with time <= t, then advances the clock to t.
  void RunUntil(Time t) {
    while (!heap_.empty() && heap_.top().time <= t) RunNext();
    if (t > now_) now_ = t;
  }

  /// Drains the queue completely.
  void RunAll() {
    while (RunNext()) {
    }
  }

  Time now() const { return now_; }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Item {
    Time time;
    std::uint64_t seq;
    std::function<void()> action;

    bool operator>(const Item& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace drtp::sim
