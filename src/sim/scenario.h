// Scenario files (§6.1).
//
// The paper records connection request/release events in scenario files
// (generated with Matlab there) and replays the *same* file against every
// routing scheme, so admission and fault-tolerance differences are
// attributable to the scheme alone. This module is the C++ rebuild of
// that workflow: generate once, serialize, replay many times.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/topology.h"
#include "sim/traffic.h"

namespace drtp::sim {

/// One replayable event. kNodeFail/kNodeRepair and kSrlgFail/kSrlgRepair
/// are schema-v2 correlated faults: a node failure takes down every
/// incident link atomically, an SRLG failure every link in the risk group.
struct ScenarioEvent {
  enum class Type {
    kRequest,
    kRelease,
    kLinkFail,
    kLinkRepair,
    kNodeFail,
    kNodeRepair,
    kSrlgFail,
    kSrlgRepair,
  };
  Type type = Type::kRequest;
  Time time = 0.0;
  ConnId conn = kInvalidConn;
  // Request-only fields (zero on releases).
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth bw = 0;
  // Link failure/repair events only.
  LinkId link = kInvalidLink;
  // Node failure/repair events only.
  NodeId node = kInvalidNode;
  // SRLG failure/repair events only.
  SrlgId srlg = kInvalidSrlg;

  /// True for the fault kinds introduced by schema v2.
  bool RequiresV2() const {
    return type == Type::kNodeFail || type == Type::kNodeRepair ||
           type == Type::kSrlgFail || type == Type::kSrlgRepair;
  }
};

/// An immutable event trace plus the traffic parameters it came from.
struct Scenario {
  TrafficConfig traffic;
  /// Sorted by (time, insertion order); a connection's release always
  /// follows its request.
  std::vector<ScenarioEvent> events;

  /// Expands GenerateRequests into interleaved request/release events.
  static Scenario Generate(const net::Topology& topo,
                           const TrafficConfig& config);

  /// Line-oriented text round-trip. Save writes `drtp-scenario 1` unless a
  /// v2 fault event is present (then `drtp-scenario 2` with
  /// `fail-node`/`repair-node`/`fail-srlg`/`repair-srlg` lines), so v1
  /// files keep round-tripping byte-identically. Load accepts both
  /// versions and throws drtp::ParseError on malformed, truncated, or
  /// out-of-range input.
  void Save(std::ostream& os) const;
  static Scenario Load(std::istream& is);
  std::string ToString() const;
  static Scenario FromString(const std::string& text);

  std::int64_t NumRequests() const;
  /// All enacted fault events (link, node, and SRLG failures).
  std::int64_t NumFailures() const;

  /// Checks every event's entity ids against the topology (nodes, links,
  /// risk groups) and throws drtp::ParseError naming the first offender.
  /// Load can only range-check against the file itself; a scenario written
  /// for one topology but replayed against a smaller one (or one with
  /// fewer SRLGs) is caught here, at the replay boundary, instead of
  /// tripping internal invariant checks mid-run.
  void Validate(const net::Topology& topo) const;
};

/// Injects `count` single-link failure events at uniform-random instants
/// in [t_begin, t_end], each repaired `mttr` seconds later (repairs may
/// fall beyond t_end). Victim links are drawn uniformly; a link is never
/// scheduled to fail again while still down. Events are merged in time
/// order. This turns the what-if P_bk analysis into enacted DRTP failure
/// handling during replay.
void InjectLinkFailures(Scenario& scenario, const net::Topology& topo,
                        int count, Time t_begin, Time t_end, Time mttr,
                        std::uint64_t seed);

}  // namespace drtp::sim
