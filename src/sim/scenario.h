// Scenario files (§6.1).
//
// The paper records connection request/release events in scenario files
// (generated with Matlab there) and replays the *same* file against every
// routing scheme, so admission and fault-tolerance differences are
// attributable to the scheme alone. This module is the C++ rebuild of
// that workflow: generate once, serialize, replay many times.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/topology.h"
#include "sim/traffic.h"

namespace drtp::sim {

/// One replayable event.
struct ScenarioEvent {
  enum class Type { kRequest, kRelease, kLinkFail, kLinkRepair };
  Type type = Type::kRequest;
  Time time = 0.0;
  ConnId conn = kInvalidConn;
  // Request-only fields (zero on releases).
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth bw = 0;
  // Failure/repair events only.
  LinkId link = kInvalidLink;
};

/// An immutable event trace plus the traffic parameters it came from.
struct Scenario {
  TrafficConfig traffic;
  /// Sorted by (time, insertion order); a connection's release always
  /// follows its request.
  std::vector<ScenarioEvent> events;

  /// Expands GenerateRequests into interleaved request/release events.
  static Scenario Generate(const net::Topology& topo,
                           const TrafficConfig& config);

  /// Line-oriented text round-trip.
  void Save(std::ostream& os) const;
  static Scenario Load(std::istream& is);
  std::string ToString() const;
  static Scenario FromString(const std::string& text);

  std::int64_t NumRequests() const;
  std::int64_t NumFailures() const;
};

/// Injects `count` single-link failure events at uniform-random instants
/// in [t_begin, t_end], each repaired `mttr` seconds later (repairs may
/// fall beyond t_end). Victim links are drawn uniformly; a link is never
/// scheduled to fail again while still down. Events are merged in time
/// order. This turns the what-if P_bk analysis into enacted DRTP failure
/// handling during replay.
void InjectLinkFailures(Scenario& scenario, const net::Topology& topo,
                        int count, Time t_begin, Time t_end, Time mttr,
                        std::uint64_t seed);

}  // namespace drtp::sim
