// Adapter: typed sim::TraceSink callbacks -> flat obs::TraceEvent records.
//
// One bridge wraps one replay (one sweep cell / one `drtpsim run`) and
// stamps every record with the routing-scheme label and, for sweeps, the
// cell index; the wrapped obs::TraceSink (JSONL, Chrome) may be shared by
// many bridges running on different threads — obs sinks serialize
// internally, the bridge itself holds no mutable shared state.
#pragma once

#include <cstdint>
#include <string>

#include "obs/trace.h"
#include "sim/trace.h"

namespace drtp::sim {

class ObsBridge : public TraceSink {
 public:
  /// `sink` is not owned and must outlive the bridge. `cell` is the sweep
  /// cell index (-1 for single runs).
  ObsBridge(obs::TraceSink& sink, std::string scheme,
            std::int64_t cell = -1);

  void OnRequest(Time t, ConnId conn, NodeId src, NodeId dst,
                 Bandwidth bw) override;
  void OnAdmit(Time t, ConnId conn, const routing::Path& primary,
               const routing::Path* backup, Bandwidth bw,
               BackupAplv backup_aplv) override;
  void OnBlock(Time t, ConnId conn, NodeId src, NodeId dst) override;
  void OnRelease(Time t, ConnId conn) override;
  void OnLinkFail(Time t, LinkId link, int recovered, int dropped,
                  int backups_broken) override;
  void OnLinkRepair(Time t, LinkId link) override;
  void OnFailover(Time t, ConnId conn,
                  const routing::Path& promoted) override;
  void OnDrop(Time t, ConnId conn) override;
  void OnBackupBreak(Time t, ConnId conn) override;
  void OnReestablish(Time t, ConnId conn, const routing::Path& backup,
                     BackupAplv backup_aplv) override;
  void OnNodeFail(Time t, NodeId node, int recovered, int dropped,
                  int backups_broken) override;
  void OnNodeRepair(Time t, NodeId node) override;
  void OnSrlgFail(Time t, SrlgId srlg, int recovered, int dropped,
                  int backups_broken) override;
  void OnSrlgRepair(Time t, SrlgId srlg) override;
  void OnDegrade(Time t, ConnId conn, int retries_left) override;

 private:
  /// A TraceEvent pre-stamped with time, kind, cell and scheme.
  obs::TraceEvent Stamp(Time t, obs::TraceEventKind kind) const;

  obs::TraceSink& sink_;
  std::string scheme_;
  std::int64_t cell_;
};

}  // namespace drtp::sim
