// Metrics collected from one scenario replay (§6's measured quantities).
#pragma once

#include <limits>
#include <string>

#include "common/stats.h"
#include "common/types.h"

namespace drtp::sim {

struct RunMetrics {
  std::string scheme;

  // --- admission -----------------------------------------------------------
  std::int64_t requests = 0;
  std::int64_t admitted = 0;
  std::int64_t blocked = 0;
  /// Admitted connections that also got a backup registered.
  std::int64_t with_backup = 0;

  // --- enacted failures (scenarios with injected link faults) --------------
  std::int64_t failures_enacted = 0;
  /// Connections whose primary was hit and whose backup was promoted.
  std::int64_t failover_recovered = 0;
  /// Connections lost to a failure (no activatable backup).
  std::int64_t failover_dropped = 0;
  /// Backups broken by a failure (released, connection kept running).
  std::int64_t backups_broken = 0;
  /// Backups re-established by step-4 resource reconfiguration.
  std::int64_t backups_reestablished = 0;

  // --- graceful degradation --------------------------------------------------
  /// Connections that entered the degraded (unprotected) state because
  /// immediate step-4 re-protection found no feasible backup.
  std::int64_t degraded = 0;
  /// Jittered-backoff re-protection attempts made for degraded connections.
  std::int64_t reprotect_retries = 0;
  /// Degraded connections that regained a backup via a backoff retry.
  std::int64_t reprotect_recovered = 0;
  /// Degraded connections that exhausted every retry and stayed exposed.
  std::int64_t reprotect_exhausted = 0;

  /// Recovery ratio actually achieved across enacted failures — the
  /// enacted counterpart of the what-if P_bk. NaN (rendered "--" by
  /// TextTable) when no enacted failure hit a primary: "no evidence" is
  /// distinct from "every hit connection dropped" (a true 0.0).
  double EnactedRecoveryRatio() const {
    const auto hit = failover_recovered + failover_dropped;
    return hit == 0 ? std::numeric_limits<double>::quiet_NaN()
                    : static_cast<double>(failover_recovered) /
                          static_cast<double>(hit);
  }

  // --- fault tolerance -------------------------------------------------------
  /// P_bk: probability of activating a backup when a single link failure
  /// disables the primary; aggregated over all sampled instants and all
  /// single-link failure cases.
  Ratio pbk;
  /// SRLG counterpart: probability the backup shares no risk group with
  /// the correlated failure that disabled the primary (structural
  /// survival; 1 − value() is the primary+backup co-failure rate). Only
  /// sampled on SRLG-tagged topologies; zero trials otherwise.
  Ratio pbk_srlg;

  // --- carried load (measurement window) -----------------------------------
  /// Time-weighted average number of active DR-connections; Fig. 5's
  /// capacity-overhead ingredient.
  double avg_active = 0.0;
  /// Sampled averages of network-wide reserved bandwidth.
  RunningStat prime_bw;
  RunningStat spare_bw;

  // --- route quality --------------------------------------------------------
  RunningStat primary_hops;
  RunningStat backup_hops;
  /// Backup-route links sharing a link with the own primary (should be
  /// rare; forced only when no disjoint route exists).
  std::int64_t backup_overlap_links = 0;

  // --- overhead --------------------------------------------------------------
  /// Route-discovery control traffic (CDP forwards for BF; zero for LSR).
  std::int64_t control_messages = 0;
  std::int64_t control_bytes = 0;
  /// Backup-registration hops that left a spare pool below target.
  std::int64_t overbooked_hops = 0;

  Time measure_start = 0.0;
  Time measure_end = 0.0;

  double AcceptanceRatio() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(admitted) / static_cast<double>(requests);
  }
};

/// Fig. 5's metric: percentage drop in carried connections relative to the
/// unprotected baseline run on the same scenario.
double CapacityOverheadPercent(const RunMetrics& baseline,
                               const RunMetrics& scheme);

}  // namespace drtp::sim
