// Experiment driver: replays a scenario against one routing scheme on a
// fresh copy of the network and collects RunMetrics.
//
// The driver owns the measurement protocol of §6: a warm-up period (the
// network fills toward steady state — lifetimes are 20–60 min, so warm-up
// spans multiple mean lifetimes), then a measurement window in which the
// active-connection count is integrated and P_bk is sampled by what-if
// failing every link at regular instants.
#pragma once

#include <functional>

#include "drtp/network.h"
#include "drtp/scheme.h"
#include "net/topology.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "sim/trace.h"

namespace drtp::sim {

struct ExperimentConfig {
  /// Measurement starts here; must be < scenario duration.
  Time warmup = 4000.0;
  /// P_bk / bandwidth sampling cadence inside the window.
  Time sample_interval = 200.0;
  /// 0 = advertise instantly after every change (the paper's assumption);
  /// > 0 = periodic advertisement, modelling link-state staleness.
  Time lsdb_refresh_interval = 0.0;
  /// Spare provisioning mode (kDedicated for ablation X3).
  core::SpareMode spare_mode = core::SpareMode::kMultiplexed;
  /// Backups per connection (§2 allows "one or more"); extras beyond the
  /// scheme's own selection come from SelectBackupFor with the existing
  /// backups shunned. 0 disables protection even for protecting schemes.
  int num_backups = 1;
  /// Run DrtpNetwork::CheckConsistency at every sample (slow; tests only).
  bool check_consistency = false;
  /// Invoked once with the network state at the end of the measurement
  /// window (before trailing releases drain it) — audits, custom metrics.
  /// Null = disabled.
  std::function<void(const core::DrtpNetwork&)> inspect_final;
  /// Receives every replay event (admissions, blocks, releases, failures);
  /// not owned. Null = tracing off.
  TraceSink* trace = nullptr;
};

/// Replays `scenario` on a fresh DrtpNetwork over `topo` using `scheme`.
/// Deterministic: same inputs, same metrics.
RunMetrics RunScenario(const net::Topology& topo, const Scenario& scenario,
                       core::RoutingScheme& scheme,
                       const ExperimentConfig& config);

}  // namespace drtp::sim
