// Experiment driver: replays a scenario against one routing scheme on a
// fresh copy of the network and collects RunMetrics.
//
// The driver owns the measurement protocol of §6: a warm-up period (the
// network fills toward steady state — lifetimes are 20–60 min, so warm-up
// spans multiple mean lifetimes), then a measurement window in which the
// active-connection count is integrated and P_bk is sampled by what-if
// failing every link at regular instants.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "drtp/failure.h"
#include "drtp/network.h"
#include "drtp/scheme.h"
#include "net/topology.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "sim/trace.h"

namespace drtp::sim {

struct ExperimentConfig {
  /// Measurement starts here; must be < scenario duration.
  Time warmup = 4000.0;
  /// P_bk / bandwidth sampling cadence inside the window.
  Time sample_interval = 200.0;
  /// 0 = advertise instantly after every change (the paper's assumption);
  /// > 0 = periodic advertisement, modelling link-state staleness.
  Time lsdb_refresh_interval = 0.0;
  /// Spare provisioning mode (kDedicated for ablation X3).
  core::SpareMode spare_mode = core::SpareMode::kMultiplexed;
  /// Backups per connection (§2 allows "one or more"); extras beyond the
  /// scheme's own selection come from SelectBackupFor with the existing
  /// backups shunned. 0 disables protection even for protecting schemes.
  int num_backups = 1;
  /// Run DrtpNetwork::CheckConsistency at every sample (slow; tests only).
  bool check_consistency = false;
  /// Bounded re-protection for connections that degraded to *unprotected*
  /// (step 4 found no feasible backup): number of jittered
  /// exponential-backoff retries before giving up. 0 leaves degraded
  /// connections exposed until another failure's step 4 covers them.
  int reprotect_max_retries = 6;
  /// Nominal delay before the first re-protection retry; doubles per
  /// attempt and is jittered uniformly in [0.5, 1.5) of nominal.
  Time reprotect_backoff = 5.0;
  /// Jitter seed; combined with the scenario's traffic seed so replays
  /// stay deterministic while distinct cells decorrelate.
  std::uint64_t reprotect_seed = 0x5eedf00dULL;
  /// Invoked after every enacted replay event (and every re-protection
  /// retry) with the network, the simulation time, a short event label
  /// ("link_fail", "node_repair", "reprotect_retry", ...), and — for
  /// failure events — the switchover report (else null). This is the
  /// fault::Auditor hook; null = disabled.
  std::function<void(const core::DrtpNetwork&, Time, std::string_view,
                     const core::SwitchoverReport*)>
      after_event;
  /// Invoked once with the network state at the end of the measurement
  /// window (before trailing releases drain it) — audits, custom metrics.
  /// Null = disabled.
  std::function<void(const core::DrtpNetwork&)> inspect_final;
  /// Receives every replay event (admissions, blocks, releases, failures);
  /// not owned. Null = tracing off.
  TraceSink* trace = nullptr;
};

/// Replays `scenario` on a fresh DrtpNetwork over `topo` using `scheme`.
/// Deterministic: same inputs, same metrics.
RunMetrics RunScenario(const net::Topology& topo, const Scenario& scenario,
                       core::RoutingScheme& scheme,
                       const ExperimentConfig& config);

}  // namespace drtp::sim
