#include "sim/obs_bridge.h"

#include <utility>

namespace drtp::sim {

ObsBridge::ObsBridge(obs::TraceSink& sink, std::string scheme,
                     std::int64_t cell)
    : sink_(sink), scheme_(std::move(scheme)), cell_(cell) {}

obs::TraceEvent ObsBridge::Stamp(Time t, obs::TraceEventKind kind) const {
  obs::TraceEvent e;
  e.t = t;
  e.kind = kind;
  e.cell = cell_;
  e.scheme = scheme_;
  return e;
}

void ObsBridge::OnRequest(Time t, ConnId conn, NodeId src, NodeId dst,
                          Bandwidth bw) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kRequest);
  e.conn = conn;
  e.src = src;
  e.dst = dst;
  e.bw = bw;
  sink_.Write(e);
}

void ObsBridge::OnAdmit(Time t, ConnId conn, const routing::Path& primary,
                        const routing::Path* backup, Bandwidth bw,
                        BackupAplv backup_aplv) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kAdmit);
  e.conn = conn;
  e.bw = bw;
  const auto& nodes = primary.nodes();
  if (!nodes.empty()) {
    e.src = nodes.front();
    e.dst = nodes.back();
  }
  e.primary = nodes;
  if (backup != nullptr) e.backup = backup->nodes();
  e.aplv = backup_aplv;
  sink_.Write(e);
}

void ObsBridge::OnBlock(Time t, ConnId conn, NodeId src, NodeId dst) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kBlock);
  e.conn = conn;
  e.src = src;
  e.dst = dst;
  sink_.Write(e);
}

void ObsBridge::OnRelease(Time t, ConnId conn) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kRelease);
  e.conn = conn;
  sink_.Write(e);
}

void ObsBridge::OnLinkFail(Time t, LinkId link, int recovered, int dropped,
                           int backups_broken) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kLinkFail);
  e.link = link;
  e.recovered = recovered;
  e.dropped = dropped;
  e.broken = backups_broken;
  sink_.Write(e);
}

void ObsBridge::OnLinkRepair(Time t, LinkId link) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kLinkRepair);
  e.link = link;
  sink_.Write(e);
}

void ObsBridge::OnFailover(Time t, ConnId conn,
                           const routing::Path& promoted) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kFailover);
  e.conn = conn;
  // The promoted backup is the connection's new primary.
  e.primary = promoted.nodes();
  sink_.Write(e);
}

void ObsBridge::OnDrop(Time t, ConnId conn) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kDrop);
  e.conn = conn;
  sink_.Write(e);
}

void ObsBridge::OnBackupBreak(Time t, ConnId conn) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kBackupBreak);
  e.conn = conn;
  sink_.Write(e);
}

void ObsBridge::OnReestablish(Time t, ConnId conn,
                              const routing::Path& backup,
                              BackupAplv backup_aplv) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kReestablish);
  e.conn = conn;
  e.backup = backup.nodes();
  e.aplv = backup_aplv;
  sink_.Write(e);
}

void ObsBridge::OnNodeFail(Time t, NodeId node, int recovered, int dropped,
                           int backups_broken) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kNodeFail);
  e.node = node;
  e.recovered = recovered;
  e.dropped = dropped;
  e.broken = backups_broken;
  sink_.Write(e);
}

void ObsBridge::OnNodeRepair(Time t, NodeId node) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kNodeRepair);
  e.node = node;
  sink_.Write(e);
}

void ObsBridge::OnSrlgFail(Time t, SrlgId srlg, int recovered, int dropped,
                           int backups_broken) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kSrlgFail);
  e.srlg = srlg;
  e.recovered = recovered;
  e.dropped = dropped;
  e.broken = backups_broken;
  sink_.Write(e);
}

void ObsBridge::OnSrlgRepair(Time t, SrlgId srlg) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kSrlgRepair);
  e.srlg = srlg;
  sink_.Write(e);
}

void ObsBridge::OnDegrade(Time t, ConnId conn, int retries_left) {
  obs::TraceEvent e = Stamp(t, obs::TraceEventKind::kDegrade);
  e.conn = conn;
  e.retries_left = retries_left;
  sink_.Write(e);
}

}  // namespace drtp::sim
