#include "proto/engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "drtp/failure.h"

namespace drtp::proto {
namespace {

bool UsesAnyDown(const core::DrtpNetwork& net, const routing::Path& path) {
  for (LinkId l : path.links()) {
    if (!net.IsLinkUp(l)) return true;
  }
  return false;
}

}  // namespace

ProtocolEngine::ProtocolEngine(core::DrtpNetwork& net, sim::EventQueue& queue,
                               ProtocolConfig config,
                               core::RoutingScheme* scheme,
                               lsdb::LinkStateDb* db)
    : net_(net),
      queue_(queue),
      config_(config),
      scheme_(scheme),
      db_(db),
      rng_(config.seed) {
  DRTP_CHECK(config_.link_delay > 0.0);
  DRTP_CHECK(config_.detection_delay >= 0.0);
  DRTP_CHECK(config_.reactive_max_retries >= 0);
  DRTP_CHECK(config_.reactive_backoff > 0.0);
  DRTP_CHECK(config_.reprotect_max_retries >= 0);
  DRTP_CHECK(config_.reprotect_backoff > 0.0);
}

void ProtocolEngine::NotifyAction() {
  if (after_action_) after_action_(net_, queue_.now());
}

void ProtocolEngine::SetupConnection(ConnId id, const routing::Path& primary,
                                     const std::optional<routing::Path>& backup,
                                     Bandwidth bw,
                                     std::function<void(ConnId, bool)> done) {
  const Time t0 = queue_.now();
  const Time forward = primary.hops() * config_.link_delay;
  // The reserve message reaches the destination after `forward`; resources
  // commit there-and-then (the per-hop race is resolved at this instant —
  // a small simplification of true hop-by-hop holding).
  queue_.Schedule(t0 + forward, [this, id, primary, backup, bw, t0,
                                 done = std::move(done)] {
    if (net_.EstablishConnection(id, primary, bw, queue_.now())) {
      NotifyAction();
      const Time confirm = primary.hops() * config_.link_delay;
      queue_.Schedule(queue_.now() + confirm, [this, id, backup, done] {
        // The backup-register packet is sent right after the confirm
        // (steps 2–3); registration never rejects.
        if (backup.has_value() && net_.Find(id) != nullptr) {
          net_.RegisterBackup(id, *backup);
          NotifyAction();
        }
        done(id, true);
      });
      return;
    }
    // Locate the refusing hop for the reject's timing.
    int refused_at = primary.hops();
    for (int i = 0; i < primary.hops(); ++i) {
      const LinkId l = primary.links()[static_cast<std::size_t>(i)];
      if (!net_.IsLinkUp(l) || !net_.ledger().CanReservePrime(l, bw)) {
        refused_at = i + 1;
        break;
      }
    }
    const Time reject_done =
        t0 + 2.0 * refused_at * config_.link_delay;
    queue_.Schedule(std::max(queue_.now(), reject_done),
                    [id, done] { done(id, false); });
  });
}

void ProtocolEngine::TearDown(ConnId id) {
  if (net_.Find(id) != nullptr) {
    net_.ReleaseConnection(id);
    NotifyAction();
  }
}

void ProtocolEngine::InjectLinkFailure(LinkId link, RecoveryMode mode) {
  DRTP_CHECK_MSG(net_.IsLinkUp(link), "link " << link << " already down");
  const LinkId one[1] = {link};
  InjectLinkSetFailure(one, mode);
}

void ProtocolEngine::InjectNodeFailure(NodeId node, RecoveryMode mode) {
  InjectLinkSetFailure(core::IncidentLinks(net_.topology(), node), mode);
}

void ProtocolEngine::InjectSrlgFailure(SrlgId srlg, RecoveryMode mode) {
  const auto members = net_.topology().LinksInSrlg(srlg);
  InjectLinkSetFailure({members.data(), members.size()}, mode);
}

void ProtocolEngine::InjectLinkSetFailure(std::span<const LinkId> links,
                                          RecoveryMode mode) {
  const Time t0 = queue_.now();
  // Expand duplex reverses and drop members already down, then take the
  // whole set down before computing any affected set: a backup sharing a
  // risk group with its primary must be seen dead at activation time.
  std::vector<LinkId> failed_set;
  failed_set.reserve(links.size() * 2);
  for (const LinkId l : links) {
    DRTP_CHECK(l >= 0 && l < net_.topology().num_links());
    if (!net_.IsLinkUp(l)) continue;
    failed_set.push_back(l);
    if (net_.config().duplex_failures) {
      const LinkId rev = net_.topology().link(l).reverse;
      if (rev != kInvalidLink && net_.IsLinkUp(rev)) {
        failed_set.push_back(rev);
      }
    }
  }
  std::sort(failed_set.begin(), failed_set.end());
  failed_set.erase(std::unique(failed_set.begin(), failed_set.end()),
                   failed_set.end());
  if (failed_set.empty()) return;
  for (const LinkId l : failed_set) net_.SetLinkDown(l);
  if (scheme_ != nullptr) scheme_->OnTopologyChanged(net_);
  NotifyAction();

  const auto in_set = [&](LinkId l) {
    return std::binary_search(failed_set.begin(), failed_set.end(), l);
  };

  // Affected sets, before any recovery mutates the table. A primary hit
  // at several member links detects at the hop closest to its source.
  std::vector<ConnId> primary_hit;
  std::vector<std::pair<ConnId, int>> hops_to_fault;  // along the primary
  std::vector<ConnId> backup_hit;
  for (const auto& [id, conn] : net_.connections()) {
    bool on_primary = false;
    for (int i = 0; i < conn.primary.hops(); ++i) {
      if (in_set(conn.primary.links()[static_cast<std::size_t>(i)])) {
        primary_hit.push_back(id);
        hops_to_fault.emplace_back(id, i);
        on_primary = true;
        break;
      }
    }
    if (on_primary) continue;
    for (const routing::Path& b : conn.backups) {
      if (std::any_of(b.links().begin(), b.links().end(), in_set)) {
        backup_hit.push_back(id);
        break;
      }
    }
  }

  const Time t_detect = t0 + config_.detection_delay;

  // Broken backups are withdrawn when the detecting router's report
  // reaches the backup's source (one detection delay is a fair bound).
  for (const ConnId id : backup_hit) {
    queue_.Schedule(t_detect, [this, id, failed_set] {
      const core::DrConnection* conn = net_.Find(id);
      if (conn == nullptr) return;
      bool released = false;
      for (std::size_t i = conn->backups.size(); i-- > 0;) {
        const auto& b = conn->backups[i];
        if (std::any_of(b.links().begin(), b.links().end(), [&](LinkId l) {
              return std::binary_search(failed_set.begin(),
                                        failed_set.end(), l);
            })) {
          net_.ReleaseBackupAt(id, i);
          released = true;
        }
      }
      if (released) {
        NotifyAction();
        // Losing the backup leaves the connection exposed just like a
        // failed step-4 re-protection: degrade and retry.
        const core::DrConnection* left = net_.Find(id);
        if (left != nullptr && !left->has_backup()) Degrade(id);
      }
    });
  }

  // Failure reports race toward each affected source; recovery actions
  // execute in report-arrival order, so connections closer to the fault
  // recover (and claim contended spare slots) first.
  for (const auto& [id, hops] : hops_to_fault) {
    const Time t_report = t_detect + hops * config_.link_delay;
    if (mode == RecoveryMode::kProactive) {
      queue_.Schedule(t_report, [this, id, t0] {
        ProactiveRecovery(id, t0, queue_.now());
      });
    } else {
      queue_.Schedule(t_report, [this, id, t0] {
        ReactiveRecovery(id, t0);
      });
    }
  }
}

void ProtocolEngine::ProactiveRecovery(ConnId id, Time failed_at,
                                       Time report_time) {
  const core::DrConnection* conn = net_.Find(id);
  if (conn == nullptr) return;  // already gone
  // Stale report: an earlier overlapping failure's recovery already moved
  // this connection onto a healthy primary (the channel switch beat this
  // report to the source). Acting on it would tear down a live connection
  // — the mid-recovery double-failure hazard.
  if (!UsesAnyDown(net_, conn->primary)) return;
  RecoveryRecord record;
  record.conn = id;
  record.failed_at = failed_at;

  // First backup that avoids every down link.
  std::size_t usable = conn->backups.size();
  for (std::size_t i = 0; i < conn->backups.size(); ++i) {
    if (!UsesAnyDown(net_, conn->backups[i])) {
      usable = i;
      break;
    }
  }
  if (usable == conn->backups.size() ||
      !net_.ActivateBackup(id, usable, report_time)) {
    if (net_.Find(id) != nullptr) net_.ReleaseConnection(id);
    NotifyAction();
    record.success = false;
    record.recovered_at = report_time;
    recoveries_.push_back(record);
    return;
  }
  // The channel-switch (activate) packet walks the promoted route; service
  // resumes when it reaches the destination.
  const core::DrConnection* promoted = net_.Find(id);
  DRTP_CHECK(promoted != nullptr);
  NotifyAction();
  const Time resume =
      report_time + promoted->primary.hops() * config_.link_delay;
  record.success = true;
  record.recovered_at = resume;
  queue_.Schedule(resume, [this, record] { recoveries_.push_back(record); });

  // Step 4: re-protect right after service resumes; no feasible backup
  // degrades the connection to unprotected with backoff retries.
  if (scheme_ != nullptr && db_ != nullptr) {
    queue_.Schedule(resume, [this, id] {
      const core::DrConnection* conn = net_.Find(id);
      if (conn == nullptr || conn->has_backup()) return;
      net_.PublishTo(*db_, queue_.now());
      auto backup =
          scheme_->SelectBackupFor(net_, *db_, conn->primary, conn->bw);
      if (backup.has_value() &&
          backup->OverlapCount(conn->primary) < conn->primary.hops() &&
          !UsesAnyDown(net_, *backup)) {
        net_.RegisterBackup(id, *backup);
        NotifyAction();
      } else {
        Degrade(id);
      }
    });
  }
}

void ProtocolEngine::Degrade(ConnId id) {
  ++degraded_;
  if (scheme_ == nullptr || db_ == nullptr ||
      config_.reprotect_max_retries <= 0) {
    ++reprotect_exhausted_;
    return;
  }
  const double jitter = rng_.UniformReal(0.5, 1.5);
  queue_.Schedule(queue_.now() + config_.reprotect_backoff * jitter,
                  [this, id] { ReprotectAttempt(id, 1); });
}

void ProtocolEngine::ReprotectAttempt(ConnId id, int attempt) {
  const core::DrConnection* conn = net_.Find(id);
  // Released, dropped, or re-protected by a later failure's step 4.
  if (conn == nullptr || conn->has_backup()) return;
  ++reprotect_retries_;
  net_.PublishTo(*db_, queue_.now());
  auto backup =
      scheme_->SelectBackupFor(net_, *db_, conn->primary, conn->bw);
  if (backup.has_value() &&
      backup->OverlapCount(conn->primary) < conn->primary.hops() &&
      !UsesAnyDown(net_, *backup)) {
    net_.RegisterBackup(id, *backup);
    ++reprotect_recovered_;
    NotifyAction();
    return;
  }
  if (attempt >= config_.reprotect_max_retries) {
    ++reprotect_exhausted_;
    return;
  }
  const double jitter = rng_.UniformReal(0.5, 1.5);
  const Time backoff =
      config_.reprotect_backoff * (1 << attempt) * jitter;
  queue_.Schedule(queue_.now() + backoff, [this, id, attempt] {
    ReprotectAttempt(id, attempt + 1);
  });
}

void ProtocolEngine::ReactiveRecovery(ConnId id, Time failed_at) {
  const core::DrConnection* conn = net_.Find(id);
  if (conn == nullptr) return;
  const NodeId src = conn->src;
  const NodeId dst = conn->dst;
  const Bandwidth bw = conn->bw;
  // The source tears down the broken connection and starts over.
  net_.ReleaseConnection(id);
  NotifyAction();
  ReactiveAttempt(id, src, dst, bw, failed_at, 0);
}

void ProtocolEngine::ReactiveAttempt(ConnId id, NodeId src, NodeId dst,
                                     Bandwidth bw, Time failed_at,
                                     int attempt) {
  DRTP_CHECK_MSG(scheme_ != nullptr && db_ != nullptr,
                 "reactive recovery needs a routing scheme");
  net_.PublishTo(*db_, queue_.now());
  const core::RouteSelection sel =
      scheme_->SelectRoutes(net_, *db_, src, dst, bw);
  const auto give_up_or_retry = [this, id, src, dst, bw, failed_at,
                                 attempt] {
    if (attempt + 1 > config_.reactive_max_retries) {
      recoveries_.push_back(RecoveryRecord{.conn = id,
                                           .failed_at = failed_at,
                                           .recovered_at = queue_.now(),
                                           .success = false,
                                           .retries = attempt});
      return;
    }
    // Banerjea: random delay, exponential back-off per retry.
    const double jitter = rng_.UniformReal(0.5, 1.5);
    const Time backoff =
        config_.reactive_backoff * (1 << attempt) * jitter;
    queue_.Schedule(queue_.now() + backoff, [this, id, src, dst, bw,
                                             failed_at, attempt] {
      ReactiveAttempt(id, src, dst, bw, failed_at, attempt + 1);
    });
  };
  if (!sel.primary.has_value()) {
    give_up_or_retry();
    return;
  }
  SetupConnection(id, *sel.primary, std::nullopt, bw,
                  [this, failed_at, attempt, give_up_or_retry](
                      ConnId conn_id, bool ok) {
                    if (ok) {
                      recoveries_.push_back(
                          RecoveryRecord{.conn = conn_id,
                                         .failed_at = failed_at,
                                         .recovered_at = queue_.now(),
                                         .success = true,
                                         .retries = attempt});
                    } else {
                      give_up_or_retry();
                    }
                  });
}

RunningStat ProtocolEngine::SuccessLatencies() const {
  RunningStat stat;
  for (const RecoveryRecord& r : recoveries_) {
    if (r.success) stat.Add(r.latency());
  }
  return stat;
}

double ProtocolEngine::RecoveryRatio() const {
  if (recoveries_.empty()) return 0.0;
  std::int64_t ok = 0;
  for (const RecoveryRecord& r : recoveries_) ok += r.success;
  return static_cast<double>(ok) /
         static_cast<double>(recoveries_.size());
}

}  // namespace drtp::proto
