// Message-level DRTP protocol engine (§2.2 steps 1–4, timed).
//
// Everything else in the library treats connection management as atomic;
// this engine runs it over the discrete-event queue with per-hop message
// latency, which is what the paper's motivation is about: a *proactive*
// backup is promoted after
//     detection + report-to-source + activation-along-backup
// message delays (tens of milliseconds), while a *reactive* scheme must
// re-run admission under duress — route discovery, hop-by-hop setup, and
// Banerjea-style randomly-jittered exponential-backoff retries when the
// contended setup fails — which the paper notes "can take several seconds
// or longer, especially in heavily-loaded networks" (§1).
//
// The engine wraps a DrtpNetwork: resources commit at the simulated time
// the deciding message arrives, so simultaneous recoveries contend in
// arrival order exactly as racing packets would.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "drtp/network.h"
#include "drtp/scheme.h"
#include "lsdb/link_state_db.h"
#include "sim/event_queue.h"

namespace drtp::proto {

struct ProtocolConfig {
  /// One-hop message latency (propagation + processing), seconds.
  Time link_delay = 0.001;
  /// Time for a router to declare an adjacent link dead (missed
  /// heartbeats), seconds.
  Time detection_delay = 0.020;
  /// Reactive mode: maximum re-establishment attempts per failure.
  int reactive_max_retries = 4;
  /// Reactive mode: base backoff before the k-th retry; doubles each time
  /// and is jittered by a uniform factor in [0.5, 1.5) (Banerjea's random
  /// delay, §1).
  Time reactive_backoff = 0.100;
  /// Seed for the retry jitter.
  std::uint64_t seed = 1;
  /// Proactive step 4: when immediate re-protection finds no feasible
  /// backup the connection degrades to *unprotected* and retries with
  /// jittered exponential backoff (same shape as the reactive retries).
  /// 0 disables the retries — degraded connections stay exposed.
  int reprotect_max_retries = 6;
  /// Base backoff before the k-th re-protection retry; doubles each time,
  /// jittered by a uniform factor in [0.5, 1.5).
  Time reprotect_backoff = 0.500;
};

/// How a connection is restored after a failure.
enum class RecoveryMode {
  kProactive,  // DRTP: promote the pre-established backup
  kReactive,   // tear down and re-establish from scratch
};

/// One connection's recovery outcome for one failure.
struct RecoveryRecord {
  ConnId conn = kInvalidConn;
  Time failed_at = 0.0;
  /// Service restored (backup activated / new route confirmed).
  Time recovered_at = 0.0;
  bool success = false;
  int retries = 0;

  Time latency() const { return recovered_at - failed_at; }
};

/// Timed DRTP signaling over a DrtpNetwork.
class ProtocolEngine {
 public:
  /// `scheme` and `db` are used for reactive re-routing and proactive
  /// step-4 re-protection; both may be null, disabling those behaviours.
  ProtocolEngine(core::DrtpNetwork& net, sim::EventQueue& queue,
                 ProtocolConfig config, core::RoutingScheme* scheme,
                 lsdb::LinkStateDb* db);

  /// Step 1–3 of connection management, timed: a reserve message walks to
  /// the destination (reserving per-hop), a confirm walks back, then the
  /// backup-register walks the backup route. `done(id, success)` fires at
  /// the simulated completion instant. On a mid-path reservation failure
  /// the partial reservation is released and done(false) fires after the
  /// round trip to the refusing hop.
  void SetupConnection(ConnId id, const routing::Path& primary,
                       const std::optional<routing::Path>& backup,
                       Bandwidth bw,
                       std::function<void(ConnId, bool)> done);

  /// Releases a connection (immediate; teardown latency is not modelled —
  /// it is off the recovery path).
  void TearDown(ConnId id);

  /// Fails `link` at the queue's current time and schedules the full
  /// recovery choreography for every affected connection under `mode`.
  /// Recovery outcomes are appended to recoveries() as they complete.
  void InjectLinkFailure(LinkId link, RecoveryMode mode);

  /// Correlated failure: every member of `links` (plus duplex reverses
  /// when the network is configured for duplex failures) goes down at the
  /// same instant, before any affected set is computed — a backup sharing
  /// a risk group with the primary is found dead at activation time, not
  /// after. Members already down are ignored.
  void InjectLinkSetFailure(std::span<const LinkId> links,
                            RecoveryMode mode);

  /// Node failure: atomically fails every link incident to `node`.
  void InjectNodeFailure(NodeId node, RecoveryMode mode);

  /// SRLG failure: atomically fails every link tagged with risk group
  /// `srlg` in the topology.
  void InjectSrlgFailure(SrlgId srlg, RecoveryMode mode);

  const std::vector<RecoveryRecord>& recoveries() const {
    return recoveries_;
  }

  /// Graceful-degradation counters: connections that lost protection with
  /// no immediate replacement, the backoff retries made for them, and how
  /// those retries ended.
  std::int64_t degraded() const { return degraded_; }
  std::int64_t reprotect_retries() const { return reprotect_retries_; }
  std::int64_t reprotect_recovered() const { return reprotect_recovered_; }
  std::int64_t reprotect_exhausted() const { return reprotect_exhausted_; }

  /// Invoked after every state-mutating engine action with the network
  /// and the simulated time — the fault::Auditor hook. Null = disabled.
  void set_after_action(
      std::function<void(const core::DrtpNetwork&, Time)> hook) {
    after_action_ = std::move(hook);
  }

  /// Latency statistics over successful recoveries.
  RunningStat SuccessLatencies() const;

  /// Fraction of affected connections whose service was restored.
  double RecoveryRatio() const;

  const ProtocolConfig& config() const { return config_; }

 private:
  void ProactiveRecovery(ConnId id, Time failed_at, Time report_time);
  void ReactiveRecovery(ConnId id, Time failed_at);
  void ReactiveAttempt(ConnId id, NodeId src, NodeId dst, Bandwidth bw,
                       Time failed_at, int attempt);
  /// Step-4 re-protection for a degraded connection; reschedules itself
  /// with exponential backoff until a backup registers or retries run out.
  void ReprotectAttempt(ConnId id, int attempt);
  /// Marks `id` degraded (no backup after recovery) and schedules the
  /// first re-protection retry.
  void Degrade(ConnId id);
  void NotifyAction();

  core::DrtpNetwork& net_;
  sim::EventQueue& queue_;
  ProtocolConfig config_;
  core::RoutingScheme* scheme_;
  lsdb::LinkStateDb* db_;
  Rng rng_;
  std::vector<RecoveryRecord> recoveries_;
  std::function<void(const core::DrtpNetwork&, Time)> after_action_;
  std::int64_t degraded_ = 0;
  std::int64_t reprotect_retries_ = 0;
  std::int64_t reprotect_recovered_ = 0;
  std::int64_t reprotect_exhausted_ = 0;
};

}  // namespace drtp::proto
