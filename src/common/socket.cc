#include "common/socket.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace drtp {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::string(strerror(errno));
}

bool FillAddr(const std::string& path, sockaddr_un* addr,
              std::string* error) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    *error = "socket path '" + path + "' empty or longer than sun_path";
    return false;
  }
  memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UniqueFd ListenUnix(const std::string& path, int backlog,
                    std::string* error) {
  sockaddr_un addr;
  if (!FillAddr(path, &addr, error)) return UniqueFd();
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = Errno("socket");
    return UniqueFd();
  }
  // A previous daemon instance that crashed leaves the inode behind;
  // binding over it needs the unlink. A *live* daemon is not protected
  // against — the operator owns the socket directory.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *error = Errno("bind '" + path + "'");
    return UniqueFd();
  }
  if (::listen(fd.get(), backlog) != 0) {
    *error = Errno("listen '" + path + "'");
    return UniqueFd();
  }
  return fd;
}

UniqueFd ConnectUnix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!FillAddr(path, &addr, error)) return UniqueFd();
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = Errno("socket");
    return UniqueFd();
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    *error = Errno("connect '" + path + "'");
    return UniqueFd();
  }
  return fd;
}

bool SendAll(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a process-
    // killing SIGPIPE.
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

long RecvSome(int fd, void* data, std::size_t n) {
  while (true) {
    const ssize_t r = ::recv(fd, data, n, 0);
    if (r < 0 && errno == EINTR) continue;
    return static_cast<long>(r);
  }
}

}  // namespace drtp
