// Core identifier and unit types shared by every DRTP subsystem.
//
// All bandwidth arithmetic is done in integral kbit/s so ledger invariants
// (total == prime + spare + free) hold exactly; simulation time is in
// seconds.
#pragma once

#include <cstdint>
#include <limits>

namespace drtp {

/// Identifies a network node (router/switch). Dense, 0-based.
using NodeId = std::int32_t;

/// Identifies a *directed* link. Dense, 0-based. A duplex connection
/// between two nodes is represented by two LinkIds.
using LinkId = std::int32_t;

/// Identifies a shared-risk link group: a set of links expected to fail
/// together (same conduit, same line card, same fiber span). Dense,
/// 0-based per topology; kInvalidSrlg marks a link outside any group.
using SrlgId = std::int32_t;

/// Identifies a DR-connection. Unique over a simulation run.
using ConnId = std::int64_t;

/// Bandwidth in kbit/s.
using Bandwidth = std::int64_t;

/// Simulation time in seconds.
using Time = double;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;
inline constexpr SrlgId kInvalidSrlg = -1;
inline constexpr ConnId kInvalidConn = -1;

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Convenience constructor: megabits per second -> kbit/s.
constexpr Bandwidth Mbps(std::int64_t mbps) { return mbps * 1000; }

/// Convenience constructor: kilobits per second (identity, for clarity).
constexpr Bandwidth Kbps(std::int64_t kbps) { return kbps; }

/// Minutes -> seconds.
constexpr Time Minutes(double m) { return m * 60.0; }

}  // namespace drtp
