// Minimal command-line flag parser for the bench and example binaries.
//
// Usage:
//   FlagSet flags("fig4_fault_tolerance");
//   auto& seed = flags.Int64("seed", 1, "experiment seed");
//   auto& fast = flags.Bool("fast", false, "shortened sweep");
//   flags.Parse(argc, argv);   // exits with usage on error / --help
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace drtp {

/// A small, dependency-free --name=value / --name value parser.
class FlagSet {
 public:
  explicit FlagSet(std::string program) : program_(std::move(program)) {}

  std::int64_t& Int64(const std::string& name, std::int64_t def,
                      const std::string& help);
  /// Range-checked variant: values outside [min, max] are rejected at
  /// parse time with an error naming the accepted range, instead of
  /// wrapping or being clamped somewhere downstream.
  std::int64_t& Int64(const std::string& name, std::int64_t def,
                      const std::string& help, std::int64_t min,
                      std::int64_t max);
  double& Double(const std::string& name, double def, const std::string& help);
  std::string& String(const std::string& name, const std::string& def,
                      const std::string& help);
  bool& Bool(const std::string& name, bool def, const std::string& help);

  /// Parses argv. On --help or an unknown/ill-formed flag, prints usage and
  /// exits (benches are leaf binaries; there is nothing to unwind).
  void Parse(int argc, char** argv);

  /// Like Parse but reports problems instead of exiting: returns an empty
  /// string on success, the error message otherwise ("help" when --help
  /// was requested). Flags parsed before the error keep their new values.
  std::string TryParse(int argc, char** argv);

  /// Remaining positional arguments after parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the usage text (exposed for tests).
  std::string Usage() const;

 private:
  enum class Type { kInt64, kDouble, kString, kBool };

  struct Flag {
    std::string name;
    std::string help;
    Type type;
    // Owned storage; stable addresses because flags are held by unique index
    // in deque-like vectors below.
    std::size_t index;
    // Accepted range (kInt64 only); defaults to the full int64 domain.
    std::int64_t min = std::numeric_limits<std::int64_t>::min();
    std::int64_t max = std::numeric_limits<std::int64_t>::max();
  };

  Flag* Find(const std::string& name);
  /// Empty string on success, a human-readable rejection otherwise.
  std::string SetValue(Flag& flag, const std::string& text);

  std::string program_;
  std::vector<Flag> flags_;
  // Separate stable pools so references handed to callers never dangle.
  std::vector<std::unique_ptr<std::int64_t>> int_pool_;
  std::vector<std::unique_ptr<double>> double_pool_;
  std::vector<std::unique_ptr<std::string>> string_pool_;
  std::vector<std::unique_ptr<bool>> bool_pool_;
  std::vector<std::string> positional_;
};

}  // namespace drtp
