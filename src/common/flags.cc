#include "common/flags.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

namespace drtp {

std::int64_t& FlagSet::Int64(const std::string& name, std::int64_t def,
                             const std::string& help) {
  int_pool_.push_back(std::make_unique<std::int64_t>(def));
  flags_.push_back({name, help, Type::kInt64, int_pool_.size() - 1});
  return *int_pool_.back();
}

std::int64_t& FlagSet::Int64(const std::string& name, std::int64_t def,
                             const std::string& help, std::int64_t min,
                             std::int64_t max) {
  std::int64_t& ref = Int64(name, def, help);
  flags_.back().min = min;
  flags_.back().max = max;
  return ref;
}

double& FlagSet::Double(const std::string& name, double def,
                        const std::string& help) {
  double_pool_.push_back(std::make_unique<double>(def));
  flags_.push_back({name, help, Type::kDouble, double_pool_.size() - 1});
  return *double_pool_.back();
}

std::string& FlagSet::String(const std::string& name, const std::string& def,
                             const std::string& help) {
  string_pool_.push_back(std::make_unique<std::string>(def));
  flags_.push_back({name, help, Type::kString, string_pool_.size() - 1});
  return *string_pool_.back();
}

bool& FlagSet::Bool(const std::string& name, bool def,
                    const std::string& help) {
  bool_pool_.push_back(std::make_unique<bool>(def));
  flags_.push_back({name, help, Type::kBool, bool_pool_.size() - 1});
  return *bool_pool_.back();
}

FlagSet::Flag* FlagSet::Find(const std::string& name) {
  for (auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string FlagSet::SetValue(Flag& flag, const std::string& text) {
  // Strict parsing throughout: the whole token must be consumed, so
  // "--jobs=4x", "--jobs=" and "--lambda=0.5.5" are rejected rather than
  // silently truncated the way stoll/stod would.
  std::string_view body = text;
  if (!body.empty() && body.front() == '+') body.remove_prefix(1);
  switch (flag.type) {
    case Type::kInt64: {
      std::int64_t value = 0;
      const auto res =
          std::from_chars(body.data(), body.data() + body.size(), value);
      if (res.ec == std::errc::result_out_of_range) {
        return "flag --" + flag.name + ": '" + text +
               "' overflows a 64-bit integer";
      }
      if (body.empty() || res.ec != std::errc() ||
          res.ptr != body.data() + body.size()) {
        return "flag --" + flag.name + ": '" + text + "' is not an integer";
      }
      if (value < flag.min || value > flag.max) {
        return "flag --" + flag.name + ": " + std::to_string(value) +
               " is out of range [" + std::to_string(flag.min) + ", " +
               std::to_string(flag.max) + "]";
      }
      *int_pool_[flag.index] = value;
      return "";
    }
    case Type::kDouble: {
      double value = 0.0;
      const auto res =
          std::from_chars(body.data(), body.data() + body.size(), value);
      if (res.ec == std::errc::result_out_of_range) {
        return "flag --" + flag.name + ": '" + text +
               "' is out of double range";
      }
      if (body.empty() || res.ec != std::errc() ||
          res.ptr != body.data() + body.size()) {
        return "flag --" + flag.name + ": '" + text + "' is not a number";
      }
      *double_pool_[flag.index] = value;
      return "";
    }
    case Type::kString:
      *string_pool_[flag.index] = text;
      return "";
    case Type::kBool:
      if (text == "true" || text == "1") {
        *bool_pool_[flag.index] = true;
      } else if (text == "false" || text == "0") {
        *bool_pool_[flag.index] = false;
      } else {
        return "flag --" + flag.name + ": '" + text +
               "' is not a boolean (true|false|1|0)";
      }
      return "";
  }
  return "flag --" + flag.name + ": unsupported flag type";
}

std::string FlagSet::TryParse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return "help";
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::string value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    Flag* flag = Find(name);
    if (flag == nullptr) return "unknown flag --" + name;
    if (!has_value) {
      if (flag->type == Type::kBool) {
        value = "true";  // bare --flag enables a boolean
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return "flag --" + name + " needs a value";
      }
    }
    const std::string error = SetValue(*flag, value);
    if (!error.empty()) return error;
  }
  return "";
}

void FlagSet::Parse(int argc, char** argv) {
  const std::string error = TryParse(argc, argv);
  if (error.empty()) return;
  if (error == "help") {
    std::fputs(Usage().c_str(), stdout);
    std::exit(0);
  }
  std::fprintf(stderr, "%s\n%s", error.c_str(), Usage().c_str());
  std::exit(2);
}

std::string FlagSet::Usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& f : flags_) {
    os << "  --" << f.name;
    switch (f.type) {
      case Type::kInt64:
        os << "=<int>   (default " << *int_pool_[f.index] << ")";
        if (f.min != std::numeric_limits<std::int64_t>::min() ||
            f.max != std::numeric_limits<std::int64_t>::max()) {
          os << " in [" << f.min << ", " << f.max << "]";
        }
        break;
      case Type::kDouble:
        os << "=<float> (default " << *double_pool_[f.index] << ")";
        break;
      case Type::kString:
        os << "=<str>   (default '" << *string_pool_[f.index] << "')";
        break;
      case Type::kBool:
        os << "[=<bool>] (default "
           << (*bool_pool_[f.index] ? "true" : "false") << ")";
        break;
    }
    os << "  " << f.help << "\n";
  }
  return os.str();
}

}  // namespace drtp
