// Invariant checking macros.
//
// DRTP_CHECK is always on and throws drtp::CheckError (derived from
// std::logic_error) so tests can assert on violated invariants; DRTP_DCHECK
// compiles away in NDEBUG builds and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace drtp {

/// Thrown when a DRTP_CHECK fails. A failed check is a programming error or
/// a corrupted invariant, never a recoverable runtime condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace drtp

#define DRTP_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::drtp::detail::CheckFailed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define DRTP_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream os_;                                         \
      os_ << msg; /* NOLINT */                                        \
      ::drtp::detail::CheckFailed(#expr, __FILE__, __LINE__,          \
                                  os_.str());                         \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define DRTP_DCHECK(expr)      \
  do {                         \
    if (false) { (void)(expr); } \
  } while (0)
#else
#define DRTP_DCHECK(expr) DRTP_CHECK(expr)
#endif
