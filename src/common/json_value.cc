#include "common/json_value.h"

#include <cctype>
#include <charconv>
#include <cmath>

namespace drtp {
namespace {

[[noreturn]] void Bad(const std::string& what) { throw ParseError(what); }

const char* KindName(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return "bool";
    case JsonValue::Kind::kNumber:
      return "number";
    case JsonValue::Kind::kString:
      return "string";
    case JsonValue::Kind::kObject:
      return "object";
    case JsonValue::Kind::kArray:
      return "array";
  }
  return "?";
}

/// Recursive-descent parser over a bounded input. Depth is capped so a
/// bracket bomb cannot exhaust the real stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue v = ParseValue(0);
    SkipWs();
    if (pos_ != text_.size()) {
      Bad("trailing garbage after JSON value at byte " +
          std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Bad("truncated JSON");
    return text_[pos_];
  }

  void Expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      Bad(std::string("expected '") + c + "' at byte " +
          std::to_string(pos_));
    }
    ++pos_;
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) return false;
    pos_ += kw.size();
    return true;
  }

  JsonValue ParseValue(int depth) {
    if (depth > kMaxJsonDepth) Bad("JSON nested deeper than 64 levels");
    SkipWs();
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return JsonValue::String(ParseString());
      case 't':
        if (ConsumeKeyword("true")) return JsonValue::Bool(true);
        break;
      case 'f':
        if (ConsumeKeyword("false")) return JsonValue::Bool(false);
        break;
      case 'n':
        if (ConsumeKeyword("null")) return JsonValue::Null();
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        break;
    }
    Bad(std::string("unexpected character '") + c + "' at byte " +
        std::to_string(pos_));
  }

  JsonValue ParseObject(int depth) {
    Expect('{');
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWs();
      if (Peek() != '"') Bad("object key must be a string");
      std::string key = ParseString();
      if (obj.Find(key) != nullptr) Bad("duplicate object key '" + key + "'");
      SkipWs();
      Expect(':');
      obj.MutableObject().emplace_back(std::move(key),
                                       ParseValue(depth + 1));
      SkipWs();
      const char c = Peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') Bad("expected ',' or '}' in object");
    }
  }

  JsonValue ParseArray(int depth) {
    Expect('[');
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.MutableArray().push_back(ParseValue(depth + 1));
      SkipWs();
      const char c = Peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') Bad("expected ',' or ']' in array");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Bad("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Bad("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Bad("dangling escape in string");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Bad("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Bad("non-hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point; surrogates are rejected (the
          // writer never produces them and the protocol is ASCII-safe).
          if (value >= 0xD800 && value <= 0xDFFF) {
            Bad("surrogate \\u escape unsupported");
          }
          if (value < 0x80) {
            out.push_back(static_cast<char>(value));
          } else if (value < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (value >> 6)));
            out.push_back(static_cast<char>(0x80 | (value & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (value >> 12)));
            out.push_back(static_cast<char>(0x80 | ((value >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (value & 0x3F)));
          }
          break;
        }
        default:
          Bad(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double d = 0.0;
    const auto [dp, dec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (dec != std::errc() || dp != token.data() + token.size()) {
      Bad("malformed number '" + std::string(token) + "'");
    }
    std::int64_t i = 0;
    if (integral) {
      const auto [ip, iec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (iec != std::errc() || ip != token.data() + token.size()) {
        integral = false;  // out of int64 range; keep the double
        i = 0;
      }
    }
    return JsonValue::Number(d, i, integral);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::AsBool() const {
  if (kind_ != Kind::kBool) {
    Bad(std::string("expected bool, got ") + KindName(kind_));
  }
  return bool_;
}

double JsonValue::AsDouble() const {
  if (kind_ != Kind::kNumber) {
    Bad(std::string("expected number, got ") + KindName(kind_));
  }
  return num_;
}

std::int64_t JsonValue::AsInt64() const {
  if (kind_ != Kind::kNumber) {
    Bad(std::string("expected integer, got ") + KindName(kind_));
  }
  if (!integral_) Bad("expected integer, got non-integral number");
  return int_;
}

const std::string& JsonValue::AsString() const {
  if (kind_ != Kind::kString) {
    Bad(std::string("expected string, got ") + KindName(kind_));
  }
  return str_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  if (kind_ != Kind::kArray) {
    Bad(std::string("expected array, got ") + KindName(kind_));
  }
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::AsObject()
    const {
  if (kind_ != Kind::kObject) {
    Bad(std::string("expected object, got ") + KindName(kind_));
  }
  return members_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d, std::int64_t i, bool integral) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  v.int_ = i;
  v.integral_ = integral;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace drtp
