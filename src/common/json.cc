#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/error.h"

namespace drtp {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonUnescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= text.size()) throw ParseError("dangling backslash");
    switch (text[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= text.size()) throw ParseError("truncated \\u escape");
        unsigned value = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = text[++i];
          value <<= 4;
          if (h >= '0' && h <= '9') {
            value |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            value |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            value |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            throw ParseError("malformed \\u escape");
          }
        }
        if (value > 0xFF) throw ParseError("\\u escape beyond latin-1");
        out += static_cast<char>(value);
        break;
      }
      default:
        throw ParseError(std::string("unknown escape '\\") + text[i] + "'");
    }
  }
  return out;
}

void JsonWriter::Raw(std::string_view text) { out_.append(text); }

void JsonWriter::BeforeValue() {
  if (scopes_.empty()) {
    DRTP_CHECK_MSG(out_.empty(), "only one top-level JSON value allowed");
    return;
  }
  if (scopes_.back() == Scope::kObject) {
    DRTP_CHECK_MSG(after_key_, "object member needs Key() before its value");
    after_key_ = false;
    return;
  }
  if (need_comma_.back()) Raw(",");
  need_comma_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  Raw("{");
  scopes_.push_back(Scope::kObject);
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  DRTP_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  DRTP_CHECK_MSG(!after_key_, "dangling Key() at EndObject");
  Raw("}");
  scopes_.pop_back();
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  Raw("[");
  scopes_.push_back(Scope::kArray);
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  DRTP_CHECK(!scopes_.empty() && scopes_.back() == Scope::kArray);
  Raw("]");
  scopes_.pop_back();
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  DRTP_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  DRTP_CHECK_MSG(!after_key_, "two Key() calls in a row");
  if (need_comma_.back()) Raw(",");
  need_comma_.back() = true;
  Raw("\"");
  Raw(JsonEscape(name));
  Raw("\":");
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  Raw("\"");
  Raw(JsonEscape(value));
  Raw("\"");
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  Raw(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Uint(std::uint64_t value) {
  BeforeValue();
  Raw(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null keeps the line parseable.
    Raw("null");
    return *this;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, value);
  DRTP_CHECK(res.ec == std::errc());
  Raw(std::string_view(buf, static_cast<std::size_t>(res.ptr - buf)));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  Raw(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  Raw("null");
  return *this;
}

}  // namespace drtp
