#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace drtp {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DRTP_CHECK(!header_.empty());
}

void TextTable::BeginRow() {
  if (!rows_.empty()) {
    DRTP_CHECK_MSG(rows_.back().size() == header_.size(),
                   "previous row has " << rows_.back().size() << " cells, want "
                                       << header_.size());
  }
  rows_.emplace_back();
}

void TextTable::Cell(const std::string& text) {
  DRTP_CHECK(!rows_.empty());
  DRTP_CHECK(rows_.back().size() < header_.size());
  rows_.back().push_back(text);
}

void TextTable::Cell(double value, int precision) {
  if (std::isnan(value)) {
    Cell(std::string("--"));
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  Cell(std::string(buf));
}

void TextTable::Cell(std::int64_t value) { Cell(std::to_string(value)); }

std::string TextTable::Render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << "  ";
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c > 0 ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace drtp
