// Non-owning callable reference.
//
// FunctionRef<R(Args...)> is a two-word (object pointer, thunk pointer)
// view of any callable. Unlike std::function it never allocates, never
// copies the target, and calls through a plain function pointer — which is
// what the routing kernels want for their per-link cost callbacks, invoked
// millions of times per sweep. The referenced callable must outlive every
// call; pass lambdas directly as arguments (they live for the full call
// expression) and never store a FunctionRef beyond the callee's scope.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace drtp {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Null reference; calling it is undefined. Test with operator bool.
  constexpr FunctionRef() noexcept = default;
  constexpr FunctionRef(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept {  // NOLINT(runtime/explicit)
    using Fn = std::remove_reference_t<F>;
    if constexpr (std::is_function_v<Fn>) {
      // A plain function: smuggle the function pointer itself through the
      // object slot (casting it to void* needs reinterpret_cast, which is
      // fine on every platform we target).
      obj_ = reinterpret_cast<void*>(&f);
      call_ = [](void* obj, Args... args) -> R {
        return (*reinterpret_cast<Fn*>(obj))(std::forward<Args>(args)...);
      };
    } else {
      obj_ = const_cast<void*>(static_cast<const void*>(std::addressof(f)));
      call_ = [](void* obj, Args... args) -> R {
        return (*static_cast<Fn*>(obj))(std::forward<Args>(args)...);
      };
    }
  }

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace drtp
