// Deterministic random number generation.
//
// Every stochastic component of the library takes an explicit seed so that
// simulation runs are reproducible and scenario replay is bitwise
// deterministic. Rng wraps a fixed engine (never the platform default, whose
// sequences differ across standard libraries would not matter here but whose
// seeding via random_device would).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace drtp {

/// Seedable random source with the distributions the simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    DRTP_CHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double UniformReal(double lo, double hi) {
    DRTP_CHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double Exponential(double rate) {
    DRTP_CHECK(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    DRTP_CHECK(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniformly chosen index into a container of the given size (> 0).
  std::size_t Index(std::size_t size) {
    DRTP_CHECK(size > 0);
    return static_cast<std::size_t>(
        UniformInt(0, static_cast<std::int64_t>(size) - 1));
  }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& Pick(std::span<const T> items) {
    return items[Index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[Index(i)]);
    }
  }

  /// Derives an independent child seed; used to split one experiment seed
  /// into per-component streams without correlation.
  std::uint64_t Fork() { return engine_(); }

  /// Raw 64-bit draw.
  std::uint64_t Next() { return engine_(); }

  /// Serializes the exact stream position (std::mt19937_64's portable
  /// text format) so a daemon snapshot can restore a scheme's RNG
  /// mid-stream and draw the identical continuation.
  std::string SaveState() const {
    std::ostringstream os;
    os << engine_;
    return os.str();
  }

  /// Restores SaveState() output. Malformed text is a caller bug (the
  /// snapshot loader validates file integrity before this runs).
  void LoadState(const std::string& state) {
    std::istringstream is(state);
    is >> engine_;
    DRTP_CHECK_MSG(!is.fail(), "malformed Rng state");
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace drtp
