// Leveled logging to stderr.
//
// Verbosity defaults to kWarn so library code stays quiet under tests and
// benches; examples raise it to kInfo to narrate what they do.
#pragma once

#include <sstream>
#include <string>

namespace drtp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide verbosity threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {

/// Stream collector that emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace drtp

#define DRTP_LOG_DEBUG \
  ::drtp::detail::LogLine(::drtp::LogLevel::kDebug, __FILE__, __LINE__)
#define DRTP_LOG_INFO \
  ::drtp::detail::LogLine(::drtp::LogLevel::kInfo, __FILE__, __LINE__)
#define DRTP_LOG_WARN \
  ::drtp::detail::LogLine(::drtp::LogLevel::kWarn, __FILE__, __LINE__)
#define DRTP_LOG_ERROR \
  ::drtp::detail::LogLine(::drtp::LogLevel::kError, __FILE__, __LINE__)
