// Leveled logging to stderr.
//
// Verbosity defaults to kWarn so library code stays quiet under tests and
// benches; examples raise it to kInfo to narrate what they do.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace drtp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace detail {
/// Process-wide verbosity threshold. Atomic because sweep worker threads
/// log concurrently with a main thread that may adjust verbosity; relaxed
/// ordering suffices — the level is an independent filter, not a
/// synchronisation point.
inline std::atomic<LogLevel> g_log_level{LogLevel::kWarn};
}  // namespace detail

/// Process-wide verbosity threshold; messages below it are dropped.
inline void SetLogLevel(LogLevel level) {
  detail::g_log_level.store(level, std::memory_order_relaxed);
}
inline LogLevel GetLogLevel() {
  return detail::g_log_level.load(std::memory_order_relaxed);
}

namespace detail {

/// Small dense per-thread tag ("t0", "t1", ...) in first-log order — the
/// daemon's decode workers and engine thread interleave on stderr, and
/// correlating a log line with a drtp.trace/1 event needs to know which.
int ThisThreadLogTag();

/// Renders the bracketed line prefix: level, UTC wall-clock timestamp
/// (millisecond ISO-8601, matching drtp.trace/1's time base), thread tag,
/// and file:line. Exposed so tests can pin the format without scraping
/// stderr.
std::string FormatLogPrefix(LogLevel level, const char* file, int line);

/// Stream collector that emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  /// Captured once at construction; the threshold is re-read nowhere else,
  /// so a concurrent SetLogLevel cannot split one message across levels.
  bool enabled_;
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace drtp

#define DRTP_LOG_DEBUG \
  ::drtp::detail::LogLine(::drtp::LogLevel::kDebug, __FILE__, __LINE__)
#define DRTP_LOG_INFO \
  ::drtp::detail::LogLine(::drtp::LogLevel::kInfo, __FILE__, __LINE__)
#define DRTP_LOG_WARN \
  ::drtp::detail::LogLine(::drtp::LogLevel::kWarn, __FILE__, __LINE__)
#define DRTP_LOG_ERROR \
  ::drtp::detail::LogLine(::drtp::LogLevel::kError, __FILE__, __LINE__)
