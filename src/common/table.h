// Aligned plain-text table rendering for the bench harnesses.
//
// The figure/table benches print the same rows/series the paper reports;
// TextTable keeps that output readable and diffable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace drtp {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row. Must be filled with exactly one Cell per column.
  void BeginRow();
  void Cell(const std::string& text);
  void Cell(double value, int precision = 3);
  void Cell(std::int64_t value);

  /// Renders with single-space-padded columns and a rule under the header.
  std::string Render() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace drtp
