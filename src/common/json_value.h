// Minimal JSON document parser — the read side of common/json.h's writer.
//
// Built for the drtp.rpc/1 wire protocol: payloads are small (bounded by
// the frame limit), trusted only as far as a local client can be trusted,
// and must fail *loudly* on malformed bytes. Parsing throws
// drtp::ParseError on any grammar violation, trailing garbage, or nesting
// deeper than kMaxJsonDepth; it never silently coerces.
//
// Numbers keep both renderings: every number gets the double value, and
// integral tokens that fit additionally carry an exact int64 (AsInt64
// refuses non-integral numbers rather than truncating).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"

namespace drtp {

/// Nesting bound: a frame of legitimate drtp.rpc traffic is two levels
/// deep; 64 leaves headroom without letting a bracket bomb exhaust the
/// parser's stack.
inline constexpr int kMaxJsonDepth = 64;

/// One parsed JSON value. Object members preserve input order; duplicate
/// keys are rejected at parse time.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; throw ParseError when the kind does not match (the
  /// caller is still validating external bytes, not our own state).
  bool AsBool() const;
  double AsDouble() const;
  /// The exact integer value; throws on non-numbers AND on numbers that
  /// were not written as integers fitting int64 (1e3, 1.5, 2^63).
  std::int64_t AsInt64() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // Construction (used by the parser; handy for tests).
  static JsonValue Null();
  static JsonValue Bool(bool b);
  static JsonValue Number(double d, std::int64_t i, bool integral);
  static JsonValue String(std::string s);
  static JsonValue Object();
  static JsonValue Array();

  // Mutable builders (valid only for the matching kind).
  std::vector<JsonValue>& MutableArray() { return array_; }
  std::vector<std::pair<std::string, JsonValue>>& MutableObject() {
    return members_;
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool integral_ = false;
  std::string str_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses exactly one JSON value spanning all of `text` (leading/trailing
/// whitespace allowed, anything else is "trailing garbage"). Throws
/// drtp::ParseError.
JsonValue ParseJson(std::string_view text);

}  // namespace drtp
