// Minimal streaming JSON writer shared by the runner's result sinks, the
// obs metrics/trace exporters and the drtpsim --format=json output.
//
// Emits a single JSON value (typically one object) into an internal
// buffer; doubles are rendered with std::to_chars shortest round-trip so
// re-parsing reproduces the exact bits, which keeps JSONL result files as
// authoritative as the in-memory metrics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace drtp {

/// Builds one JSON value. Calls must follow JSON grammar: inside an
/// object alternate Key()/value, inside an array emit values directly.
/// Misuse (e.g. a value in an object without a preceding Key) trips a
/// DRTP_CHECK. Not thread-safe; writers are cheap, make one per message.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  JsonWriter& Key(std::string_view name);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& Uint(std::uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The rendered text. Valid once every container has been closed.
  const std::string& str() const { return out_; }

 private:
  enum class Scope { kObject, kArray };

  void BeforeValue();
  void Raw(std::string_view text);

  std::string out_;
  std::vector<Scope> scopes_;
  // True when the next token at the current nesting level needs a ','.
  std::vector<bool> need_comma_;
  bool after_key_ = false;
};

/// JSON string escaping (quotes not included).
std::string JsonEscape(std::string_view text);

/// Inverse of JsonEscape for machine-generated lines (checkpoint journal
/// payloads): handles the short escapes and \u00XX. Throws
/// drtp::ParseError on a dangling backslash or malformed \u sequence;
/// \uXXXX above 0xFF (never produced by JsonEscape) is rejected too.
std::string JsonUnescape(std::string_view text);

}  // namespace drtp
