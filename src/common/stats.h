// Streaming statistics used by the metrics layer.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace drtp {

/// Welford streaming mean/variance with min/max tracking.
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Half-width of the ~95% normal confidence interval on the mean.
  double ci95() const {
    if (count_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
  }

  void Merge(const RunningStat& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(o.count_);
    const double delta = o.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += o.m2_ + delta * delta * n1 * n2 / n;
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Integrates a piecewise-constant signal over time; reports its
/// time-weighted average over the observed span. Used for "average number
/// of active connections" style metrics.
class TimeWeightedStat {
 public:
  /// Record that the signal takes `value` from time `now` onward.
  void Set(Time now, double value) {
    DRTP_CHECK(now >= last_time_ || !started_);
    if (started_) {
      integral_ += last_value_ * (now - last_time_);
    } else {
      start_time_ = now;
      started_ = true;
    }
    last_time_ = now;
    last_value_ = value;
  }

  /// Closes the window at `now` and returns the time-weighted mean.
  double Average(Time now) const {
    if (!started_ || now <= start_time_) return 0.0;
    DRTP_CHECK(now >= last_time_);
    const double total = integral_ + last_value_ * (now - last_time_);
    return total / (now - start_time_);
  }

  bool started() const { return started_; }
  double last_value() const { return last_value_; }

 private:
  bool started_ = false;
  Time start_time_ = 0.0;
  Time last_time_ = 0.0;
  double last_value_ = 0.0;
  double integral_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Used for path-length and conflict-count distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    DRTP_CHECK(hi > lo);
    DRTP_CHECK(bins > 0);
  }

  void Add(double x) {
    double t = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<std::int64_t>(t * static_cast<double>(size()));
    if (bin < 0) bin = 0;
    if (bin >= static_cast<std::int64_t>(size()))
      bin = static_cast<std::int64_t>(size()) - 1;
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
  }

  std::size_t size() const { return counts_.size(); }
  std::int64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::int64_t total() const { return total_; }

  /// Smallest x such that at least `q` (0..1] of the mass lies at or below
  /// the bin containing x. Returns the bin upper edge.
  double Quantile(double q) const {
    DRTP_CHECK(q > 0.0 && q <= 1.0);
    if (total_ == 0) return lo_;
    const auto threshold =
        static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total_)));
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      acc += counts_[i];
      if (acc >= threshold) {
        return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                         static_cast<double>(counts_.size());
      }
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

/// Ratio counter: successes over trials, safe when empty.
struct Ratio {
  std::int64_t hits = 0;
  std::int64_t trials = 0;

  void Add(bool hit) {
    ++trials;
    if (hit) ++hits;
  }
  void AddMany(std::int64_t h, std::int64_t t) {
    DRTP_CHECK(h >= 0 && t >= h);
    hits += h;
    trials += t;
  }
  double value() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(hits) / static_cast<double>(trials);
  }
  void Merge(const Ratio& o) {
    hits += o.hits;
    trials += o.trials;
  }
};

}  // namespace drtp
