// Thin RAII wrappers over local (AF_UNIX) stream sockets.
//
// The daemon and its clients speak over a filesystem socket — no network
// exposure, no address parsing, kernel-enforced same-host locality. All
// helpers report failures as error strings (errno rendered in) rather
// than exceptions: socket teardown races are ordinary events for a
// server, not invariant violations.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace drtp {

/// Owning file descriptor; closes on destruction. -1 = empty.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// Binds and listens on a unix stream socket at `path`. An existing
/// filesystem entry at `path` is unlinked first (stale socket from a
/// crashed daemon). Invalid fd + `*error` on failure. Paths longer than
/// sun_path (~107 bytes) are rejected.
UniqueFd ListenUnix(const std::string& path, int backlog,
                    std::string* error);

/// Connects to a unix stream socket. Invalid fd + `*error` on failure.
UniqueFd ConnectUnix(const std::string& path, std::string* error);

/// Writes all `n` bytes, retrying short writes and EINTR. False on any
/// hard error (peer gone).
bool SendAll(int fd, const void* data, std::size_t n);

/// Reads up to `n` bytes once (blocking), retrying EINTR. Returns the
/// byte count, 0 on orderly EOF, -1 on error.
long RecvSome(int fd, void* data, std::size_t n);

}  // namespace drtp
