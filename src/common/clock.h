// Clock abstraction for the service layer.
//
// The simulator's Time is virtual and deterministic; the daemon also needs
// *wall* time (latency stamps, batch linger deadlines, log lines). Code
// that must stay testable takes a Clock&, so tests can drive deadlines
// with a ManualClock instead of sleeping.
#pragma once

#include <chrono>
#include <cstdint>

namespace drtp {

/// Nanoseconds from an arbitrary monotonic origin.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::int64_t NowNs() = 0;
};

/// The real steady clock; one process-wide instance via Instance().
class MonotonicClock final : public Clock {
 public:
  std::int64_t NowNs() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  static MonotonicClock& Instance() {
    static MonotonicClock clock;
    return clock;
  }
};

/// Hand-cranked clock for tests: time moves only when told to.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::int64_t start_ns = 0) : now_ns_(start_ns) {}
  std::int64_t NowNs() override { return now_ns_; }
  void AdvanceNs(std::int64_t delta_ns) { now_ns_ += delta_ns; }

 private:
  std::int64_t now_ns_;
};

}  // namespace drtp
