// Line-oriented parsing helpers for the text file formats (topology,
// scenario). Loaders built on these report malformed, truncated, or
// out-of-range input as drtp::ParseError with the offending 1-based line
// — never a CHECK failure, never silently skipped tokens.
#pragma once

#include <cstdint>
#include <istream>
#include <sstream>
#include <string>

#include "common/error.h"

namespace drtp {

/// Counts over this bound are treated as corrupted headers rather than
/// honored with a multi-gigabyte allocation.
inline constexpr int kMaxLineIoCount = 10'000'000;

/// Sequential reader tracking the 1-based line number for diagnostics.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next non-blank line; throws when the input ends before one appears.
  std::string Next(const char* expected) {
    std::string line;
    while (std::getline(is_, line)) {
      ++lineno_;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.find_first_not_of(" \t") != std::string::npos) return line;
    }
    throw ParseError(std::string("truncated input; expected ") + expected,
                     lineno_);
  }

  /// True iff any non-blank line remains (consumes blanks).
  bool HasTrailing() {
    std::string line;
    while (std::getline(is_, line)) {
      ++lineno_;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.find_first_not_of(" \t") != std::string::npos) return true;
    }
    return false;
  }

  std::int64_t lineno() const { return lineno_; }

 private:
  std::istream& is_;
  std::int64_t lineno_ = 0;
};

namespace lineio {

/// Parses `line` as `<keyword> <fields...>` with nothing left over.
template <typename... Fields>
void ParseLine(const std::string& line, std::int64_t lineno,
               const char* keyword, Fields&... fields) {
  std::istringstream ls(line);
  std::string kw;
  ls >> kw;
  if (kw != keyword) {
    throw ParseError(
        "expected '" + std::string(keyword) + "', got '" + kw + "'", lineno);
  }
  if (!(ls >> ... >> fields)) {
    throw ParseError("malformed '" + std::string(keyword) + "' line", lineno);
  }
  std::string extra;
  if (ls >> extra) {
    throw ParseError("trailing garbage '" + extra + "' after '" +
                         std::string(keyword) + "'",
                     lineno);
  }
}

/// Parses the remainder of an already-keyword-matched line.
template <typename... Fields>
void ParseFields(std::istringstream& ls, std::int64_t lineno,
                 const std::string& keyword, Fields&... fields) {
  if (!(ls >> ... >> fields)) {
    throw ParseError("malformed '" + keyword + "' line", lineno);
  }
  std::string extra;
  if (ls >> extra) {
    throw ParseError(
        "trailing garbage '" + extra + "' after '" + keyword + "'", lineno);
  }
}

/// Parses `<keyword> <count>` with a plausibility bound.
inline int ParseCount(LineReader& in, const char* keyword) {
  int count = 0;
  ParseLine(in.Next(keyword), in.lineno(), keyword, count);
  if (count < 0 || count > kMaxLineIoCount) {
    throw ParseError("implausible " + std::string(keyword) + " count " +
                         std::to_string(count),
                     in.lineno());
  }
  return count;
}

}  // namespace lineio
}  // namespace drtp
