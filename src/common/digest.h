// Stable 64-bit content digests for journaled files.
//
// The checkpoint journal (runner/checkpoint.h) stores one digest per
// result line so a resumed sweep can verify that the bytes on disk are
// exactly the bytes a completed cell wrote. FNV-1a is used deliberately:
// the digest guards against torn writes and file mixups, not adversaries,
// and its one-multiply-per-byte loop keeps journaling off the profile.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"

namespace drtp {

inline constexpr std::uint64_t kFnv1aOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x00000100000001B3ULL;

/// Folds `bytes` into a running FNV-1a state (seed with kFnv1aOffset).
constexpr std::uint64_t Fnv1aExtend(std::uint64_t state,
                                    std::string_view bytes) {
  for (const char c : bytes) {
    state ^= static_cast<unsigned char>(c);
    state *= kFnv1aPrime;
  }
  return state;
}

/// One-shot FNV-1a over `bytes`.
constexpr std::uint64_t Fnv1a(std::string_view bytes) {
  return Fnv1aExtend(kFnv1aOffset, bytes);
}

/// Fixed-width lowercase hex rendering (16 chars), the journal encoding.
inline std::string DigestHex(std::uint64_t digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

/// Inverse of DigestHex; throws ParseError on anything but 16 hex chars.
inline std::uint64_t ParseDigestHex(std::string_view hex) {
  if (hex.size() != 16) {
    throw ParseError("digest '" + std::string(hex) + "' is not 16 hex chars");
  }
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw ParseError("digest '" + std::string(hex) +
                       "' contains a non-hex character");
    }
  }
  return value;
}

}  // namespace drtp
