#include "common/log.h"

#include <cstdio>

namespace drtp {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    os_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    os_ << '\n';
    std::fputs(os_.str().c_str(), stderr);
  }
}

}  // namespace detail
}  // namespace drtp
