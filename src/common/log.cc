#include "common/log.h"

#include <time.h>

#include <atomic>
#include <cstdio>

namespace drtp {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

namespace detail {

int ThisThreadLogTag() {
  static std::atomic<int> next{0};
  thread_local const int tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

std::string FormatLogPrefix(LogLevel level, const char* file, int line) {
  // Wall clock (not steady): log lines are correlated with external
  // artifacts — trace files, CI logs — which carry wall time.
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  tm utc{};
  gmtime_r(&ts.tv_sec, &utc);
  char stamp[40];
  std::snprintf(stamp, sizeof stamp, "%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, ts.tv_nsec / 1000000);
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::string out;
  out.reserve(64);
  out += '[';
  out += LevelName(level);
  out += ' ';
  out += stamp;
  out += " t";
  out += std::to_string(ThisThreadLogTag());
  out += ' ';
  out += base;
  out += ':';
  out += std::to_string(line);
  out += "] ";
  return out;
}

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  // Everything below the level check — including the clock read — is
  // skipped for suppressed lines, preserving the cheap fast path.
  if (enabled_) os_ << FormatLogPrefix(level_, file, line);
}

LogLine::~LogLine() {
  if (enabled_) {
    os_ << '\n';
    std::fputs(os_.str().c_str(), stderr);
  }
}

}  // namespace detail
}  // namespace drtp
