#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace drtp {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    os_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    os_ << '\n';
    std::fputs(os_.str().c_str(), stderr);
  }
}

}  // namespace detail
}  // namespace drtp
