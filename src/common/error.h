// Structured error types for external input.
//
// CheckError (check.h) means *our* state broke; ParseError means *their*
// bytes did. Loaders of operator-supplied files (net::graphio,
// sim::Scenario) throw ParseError with the 1-based input line so CLIs can
// report "file:line: what" instead of an invariant stack, and so callers
// can distinguish bad input from a corrupted program.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace drtp {

/// Malformed or truncated external input (scenario/topology files).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what, std::int64_t line = -1)
      : std::runtime_error(Format(what, line)), line_(line) {}

  /// 1-based line of the offending input, or -1 when unknown.
  std::int64_t line() const { return line_; }

 private:
  static std::string Format(const std::string& what, std::int64_t line) {
    if (line < 0) return what;
    std::ostringstream os;
    os << "line " << line << ": " << what;
    return os.str();
  }

  std::int64_t line_ = -1;
};

}  // namespace drtp
