#include "net/topology.h"

#include <algorithm>
#include <queue>

namespace drtp::net {

NodeId Topology::AddNode(double x, double y) {
  const NodeId id = num_nodes();
  nodes_.push_back(Node{.id = id, .x = x, .y = y, .out_links = {}, .in_links = {}});
  InvalidateCsr();
  return id;
}

LinkId Topology::AddLink(NodeId src, NodeId dst, Bandwidth capacity) {
  DRTP_CHECK(src >= 0 && src < num_nodes());
  DRTP_CHECK(dst >= 0 && dst < num_nodes());
  DRTP_CHECK_MSG(src != dst, "self-loop at node " << src);
  DRTP_CHECK(capacity > 0);
  DRTP_CHECK_MSG(FindLink(src, dst) == kInvalidLink,
                 "duplicate link " << src << "->" << dst);
  const LinkId id = num_links();
  links_.push_back(Link{.id = id, .src = src, .dst = dst,
                        .capacity = capacity, .reverse = kInvalidLink});
  nodes_[static_cast<std::size_t>(src)].out_links.push_back(id);
  nodes_[static_cast<std::size_t>(dst)].in_links.push_back(id);
  if (!srlg_of_.empty()) srlg_of_.push_back(kInvalidSrlg);
  InvalidateCsr();
  return id;
}

const Csr& Topology::csr() const {
  if (const Csr* published = csr_published_.load(std::memory_order_acquire)) {
    return *published;
  }
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (!csr_cache_) {
    auto csr = std::make_unique<Csr>();
    const auto n = static_cast<std::size_t>(num_nodes());
    const auto e = static_cast<std::size_t>(num_links());
    csr->out_offsets.resize(n + 1);
    csr->in_offsets.resize(n + 1);
    csr->out_link_ids.resize(e);
    csr->out_heads.resize(e);
    csr->in_link_ids.resize(e);
    csr->in_tails.resize(e);
    csr->link_src.resize(e);
    csr->link_dst.resize(e);
    std::int32_t out_at = 0;
    std::int32_t in_at = 0;
    for (std::size_t u = 0; u < n; ++u) {
      csr->out_offsets[u] = out_at;
      csr->in_offsets[u] = in_at;
      for (LinkId l : nodes_[u].out_links) {
        csr->out_link_ids[static_cast<std::size_t>(out_at)] = l;
        csr->out_heads[static_cast<std::size_t>(out_at)] =
            links_[static_cast<std::size_t>(l)].dst;
        ++out_at;
      }
      for (LinkId l : nodes_[u].in_links) {
        csr->in_link_ids[static_cast<std::size_t>(in_at)] = l;
        csr->in_tails[static_cast<std::size_t>(in_at)] =
            links_[static_cast<std::size_t>(l)].src;
        ++in_at;
      }
    }
    csr->out_offsets[n] = out_at;
    csr->in_offsets[n] = in_at;
    for (std::size_t l = 0; l < e; ++l) {
      csr->link_src[l] = links_[l].src;
      csr->link_dst[l] = links_[l].dst;
    }
    csr_cache_ = std::move(csr);
  }
  csr_published_.store(csr_cache_.get(), std::memory_order_release);
  return *csr_cache_;
}

std::pair<LinkId, LinkId> Topology::AddDuplexLink(NodeId a, NodeId b,
                                                  Bandwidth capacity) {
  const LinkId ab = AddLink(a, b, capacity);
  const LinkId ba = AddLink(b, a, capacity);
  links_[static_cast<std::size_t>(ab)].reverse = ba;
  links_[static_cast<std::size_t>(ba)].reverse = ab;
  return {ab, ba};
}

LinkId Topology::FindLink(NodeId src, NodeId dst) const {
  if (src < 0 || src >= num_nodes()) return kInvalidLink;
  for (LinkId l : node(src).out_links) {
    if (link(l).dst == dst) return l;
  }
  return kInvalidLink;
}

double Topology::AverageDegree() const {
  if (num_nodes() == 0) return 0.0;
  // With duplex pairs, out-degree == undirected degree.
  return static_cast<double>(num_links()) / static_cast<double>(num_nodes());
}

bool Topology::IsConnected() const {
  if (num_nodes() <= 1) return true;
  // BFS from node 0 over out-links; with duplex pairs this equals
  // undirected connectivity, and for general digraphs we additionally
  // require reverse reachability via in-links.
  auto reaches_all = [&](bool forward) {
    std::vector<char> seen(static_cast<std::size_t>(num_nodes()), 0);
    std::queue<NodeId> q;
    q.push(0);
    seen[0] = 1;
    int count = 1;
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      const auto& adj = forward ? node(u).out_links : node(u).in_links;
      for (LinkId l : adj) {
        const NodeId v = forward ? link(l).dst : link(l).src;
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = 1;
          ++count;
          q.push(v);
        }
      }
    }
    return count == num_nodes();
  };
  return reaches_all(true) && reaches_all(false);
}

void Topology::AssignSrlg(LinkId l, SrlgId g) {
  DRTP_CHECK(l >= 0 && l < num_links());
  DRTP_CHECK_MSG(g >= 0, "srlg group must be non-negative, got " << g);
  // Covers both the lazy first allocation and any drift: links added
  // after the first AssignSrlg must occupy (untagged) slots so srlg(l)
  // never indexes past the end.
  if (srlg_of_.size() < static_cast<std::size_t>(num_links())) {
    srlg_of_.resize(static_cast<std::size_t>(num_links()), kInvalidSrlg);
  }
  SrlgId& slot = srlg_of_[static_cast<std::size_t>(l)];
  if (slot == g) return;
  if (slot != kInvalidSrlg) {
    auto& old = srlg_links_[static_cast<std::size_t>(slot)];
    old.erase(std::remove(old.begin(), old.end(), l), old.end());
  }
  slot = g;
  if (g >= num_srlgs()) srlg_links_.resize(static_cast<std::size_t>(g) + 1);
  auto& members = srlg_links_[static_cast<std::size_t>(g)];
  members.insert(std::lower_bound(members.begin(), members.end(), l), l);
}

std::vector<NodeId> Topology::Neighbors(NodeId id) const {
  std::vector<NodeId> out;
  out.reserve(node(id).out_links.size());
  for (LinkId l : node(id).out_links) out.push_back(link(l).dst);
  return out;
}

}  // namespace drtp::net
