// Network topology: nodes (routers/switches) joined by directed links.
//
// The paper's model (§6.1): every connection between two nodes is two
// unidirectional links of identical capacity; AddDuplexLink builds that
// pair and cross-references the two halves.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace drtp::net {

/// A router/switch. Coordinates are in the unit square; they only matter to
/// geometric generators (Waxman) and visual dumps.
struct Node {
  NodeId id = kInvalidNode;
  double x = 0.0;
  double y = 0.0;
  std::vector<LinkId> out_links;
  std::vector<LinkId> in_links;
};

/// A unidirectional link. `reverse` is the opposite half of a duplex pair,
/// or kInvalidLink for a strictly one-way link.
struct Link {
  LinkId id = kInvalidLink;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth capacity = 0;
  LinkId reverse = kInvalidLink;
};

/// Immutable-after-build graph structure. Bandwidth *state* lives in
/// net::BandwidthLedger; Topology only records capacities.
class Topology {
 public:
  Topology() = default;

  /// Adds a node at (x, y); returns its dense id.
  NodeId AddNode(double x = 0.0, double y = 0.0);

  /// Adds one unidirectional link. Requires distinct, existing endpoints
  /// and no pre-existing link src->dst (parallel links are not modeled).
  LinkId AddLink(NodeId src, NodeId dst, Bandwidth capacity);

  /// Adds a duplex pair a<->b; returns {a->b, b->a}.
  std::pair<LinkId, LinkId> AddDuplexLink(NodeId a, NodeId b,
                                          Bandwidth capacity);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_links() const { return static_cast<int>(links_.size()); }

  const Node& node(NodeId id) const {
    DRTP_DCHECK(id >= 0 && id < num_nodes());
    return nodes_[static_cast<std::size_t>(id)];
  }
  const Link& link(LinkId id) const {
    DRTP_DCHECK(id >= 0 && id < num_links());
    return links_[static_cast<std::size_t>(id)];
  }

  std::span<const LinkId> out_links(NodeId id) const {
    return node(id).out_links;
  }
  std::span<const LinkId> in_links(NodeId id) const {
    return node(id).in_links;
  }

  /// Link id of src->dst, or kInvalidLink.
  LinkId FindLink(NodeId src, NodeId dst) const;

  /// Directed links per node (== undirected degree when all links are
  /// duplex pairs) — the paper's "average node degree E".
  double AverageDegree() const;

  /// True iff every node can reach every other over directed links.
  bool IsConnected() const;

  /// Nodes adjacent via outgoing links.
  std::vector<NodeId> Neighbors(NodeId id) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
};

}  // namespace drtp::net
