// Network topology: nodes (routers/switches) joined by directed links.
//
// The paper's model (§6.1): every connection between two nodes is two
// unidirectional links of identical capacity; AddDuplexLink builds that
// pair and cross-references the two halves.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace drtp::net {

/// A router/switch. Coordinates are in the unit square; they only matter to
/// geometric generators (Waxman) and visual dumps.
struct Node {
  NodeId id = kInvalidNode;
  double x = 0.0;
  double y = 0.0;
  std::vector<LinkId> out_links;
  std::vector<LinkId> in_links;
};

/// A unidirectional link. `reverse` is the opposite half of a duplex pair,
/// or kInvalidLink for a strictly one-way link.
struct Link {
  LinkId id = kInvalidLink;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth capacity = 0;
  LinkId reverse = kInvalidLink;
};

/// Immutable-after-build graph structure. Bandwidth *state* lives in
/// net::BandwidthLedger; Topology only records capacities.
class Topology {
 public:
  Topology() = default;

  /// Adds a node at (x, y); returns its dense id.
  NodeId AddNode(double x = 0.0, double y = 0.0);

  /// Adds one unidirectional link. Requires distinct, existing endpoints
  /// and no pre-existing link src->dst (parallel links are not modeled).
  LinkId AddLink(NodeId src, NodeId dst, Bandwidth capacity);

  /// Adds a duplex pair a<->b; returns {a->b, b->a}.
  std::pair<LinkId, LinkId> AddDuplexLink(NodeId a, NodeId b,
                                          Bandwidth capacity);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_links() const { return static_cast<int>(links_.size()); }

  const Node& node(NodeId id) const {
    DRTP_DCHECK(id >= 0 && id < num_nodes());
    return nodes_[static_cast<std::size_t>(id)];
  }
  const Link& link(LinkId id) const {
    DRTP_DCHECK(id >= 0 && id < num_links());
    return links_[static_cast<std::size_t>(id)];
  }

  std::span<const LinkId> out_links(NodeId id) const {
    return node(id).out_links;
  }
  std::span<const LinkId> in_links(NodeId id) const {
    return node(id).in_links;
  }

  /// Link id of src->dst, or kInvalidLink.
  LinkId FindLink(NodeId src, NodeId dst) const;

  /// Directed links per node (== undirected degree when all links are
  /// duplex pairs) — the paper's "average node degree E".
  double AverageDegree() const;

  /// True iff every node can reach every other over directed links.
  bool IsConnected() const;

  /// Nodes adjacent via outgoing links.
  std::vector<NodeId> Neighbors(NodeId id) const;

  // --- shared-risk link groups ---------------------------------------------
  // Correlated-failure metadata: links in the same group fail together
  // (fault::ApplySrlgFailure). Groups are dense 0-based ids; assignment is
  // optional and typically covers duplex pairs symmetrically.

  /// Tags `l` as a member of group `g` (g >= 0). Re-assigning moves the
  /// link between groups.
  void AssignSrlg(LinkId l, SrlgId g);

  /// Group of `l`, or kInvalidSrlg when untagged.
  SrlgId srlg(LinkId l) const {
    DRTP_DCHECK(l >= 0 && l < num_links());
    return srlg_of_.empty() ? kInvalidSrlg
                            : srlg_of_[static_cast<std::size_t>(l)];
  }

  /// 1 + highest assigned group id (0 when no link is tagged).
  int num_srlgs() const { return static_cast<int>(srlg_links_.size()); }

  bool has_srlgs() const { return num_srlgs() > 0; }

  /// Members of group `g`, ascending by link id.
  std::span<const LinkId> LinksInSrlg(SrlgId g) const {
    DRTP_CHECK(g >= 0 && g < num_srlgs());
    return srlg_links_[static_cast<std::size_t>(g)];
  }

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<SrlgId> srlg_of_;              // empty until first AssignSrlg
  std::vector<std::vector<LinkId>> srlg_links_;
};

}  // namespace drtp::net
