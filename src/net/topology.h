// Network topology: nodes (routers/switches) joined by directed links.
//
// The paper's model (§6.1): every connection between two nodes is two
// unidirectional links of identical capacity; AddDuplexLink builds that
// pair and cross-references the two halves.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace drtp::net {

/// A router/switch. Coordinates are in the unit square; they only matter to
/// geometric generators (Waxman) and visual dumps.
struct Node {
  NodeId id = kInvalidNode;
  double x = 0.0;
  double y = 0.0;
  std::vector<LinkId> out_links;
  std::vector<LinkId> in_links;
};

/// A unidirectional link. `reverse` is the opposite half of a duplex pair,
/// or kInvalidLink for a strictly one-way link.
struct Link {
  LinkId id = kInvalidLink;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth capacity = 0;
  LinkId reverse = kInvalidLink;
};

/// Compressed-sparse-row view of the adjacency: the per-node link lists
/// flattened into contiguous arrays, plus struct-of-arrays mirrors of every
/// link's endpoints. Kernels that walk the whole graph (Dijkstra,
/// hop-bounded DP, Bellman-Ford) read this instead of chasing
/// Node::out_links -> Link, which at 10k nodes is two dependent cache
/// misses per edge. Row order is exactly the out_links/in_links insertion
/// order, so a kernel ported from the pointer layout visits edges in the
/// identical sequence (and therefore breaks ties identically).
struct Csr {
  /// out_offsets[u]..out_offsets[u+1] index the outgoing rows.
  std::vector<std::int32_t> out_offsets;
  std::vector<LinkId> out_link_ids;
  std::vector<NodeId> out_heads;  // dst of the matching out_link_ids entry

  /// in_offsets[u]..in_offsets[u+1] index the incoming rows.
  std::vector<std::int32_t> in_offsets;
  std::vector<LinkId> in_link_ids;
  std::vector<NodeId> in_tails;  // src of the matching in_link_ids entry

  /// Per-link endpoint mirrors (indexed by LinkId).
  std::vector<NodeId> link_src;
  std::vector<NodeId> link_dst;

  int num_nodes() const { return static_cast<int>(out_offsets.size()) - 1; }
  int num_links() const { return static_cast<int>(link_src.size()); }

  std::span<const LinkId> out_links(NodeId u) const {
    const auto i = static_cast<std::size_t>(u);
    return {out_link_ids.data() + out_offsets[i],
            out_link_ids.data() + out_offsets[i + 1]};
  }
  std::span<const NodeId> out_heads_of(NodeId u) const {
    const auto i = static_cast<std::size_t>(u);
    return {out_heads.data() + out_offsets[i],
            out_heads.data() + out_offsets[i + 1]};
  }
  std::span<const LinkId> in_links(NodeId u) const {
    const auto i = static_cast<std::size_t>(u);
    return {in_link_ids.data() + in_offsets[i],
            in_link_ids.data() + in_offsets[i + 1]};
  }
};

/// Immutable-after-build graph structure. Bandwidth *state* lives in
/// net::BandwidthLedger; Topology only records capacities.
class Topology {
 public:
  Topology() = default;

  // Copies and moves carry the graph but never the cached CSR view: the
  // cache holds a raw pointer handed out by csr(), so sharing it across
  // objects would dangle. Each copy rebuilds lazily on first use.
  Topology(const Topology& other)
      : nodes_(other.nodes_),
        links_(other.links_),
        srlg_of_(other.srlg_of_),
        srlg_links_(other.srlg_links_) {}
  Topology(Topology&& other) noexcept
      : nodes_(std::move(other.nodes_)),
        links_(std::move(other.links_)),
        srlg_of_(std::move(other.srlg_of_)),
        srlg_links_(std::move(other.srlg_links_)) {
    other.InvalidateCsr();
  }
  Topology& operator=(const Topology& other) {
    if (this != &other) {
      nodes_ = other.nodes_;
      links_ = other.links_;
      srlg_of_ = other.srlg_of_;
      srlg_links_ = other.srlg_links_;
      InvalidateCsr();
    }
    return *this;
  }
  Topology& operator=(Topology&& other) noexcept {
    if (this != &other) {
      nodes_ = std::move(other.nodes_);
      links_ = std::move(other.links_);
      srlg_of_ = std::move(other.srlg_of_);
      srlg_links_ = std::move(other.srlg_links_);
      InvalidateCsr();
      other.InvalidateCsr();
    }
    return *this;
  }

  /// Adds a node at (x, y); returns its dense id.
  NodeId AddNode(double x = 0.0, double y = 0.0);

  /// Adds one unidirectional link. Requires distinct, existing endpoints
  /// and no pre-existing link src->dst (parallel links are not modeled).
  LinkId AddLink(NodeId src, NodeId dst, Bandwidth capacity);

  /// Adds a duplex pair a<->b; returns {a->b, b->a}.
  std::pair<LinkId, LinkId> AddDuplexLink(NodeId a, NodeId b,
                                          Bandwidth capacity);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_links() const { return static_cast<int>(links_.size()); }

  const Node& node(NodeId id) const {
    DRTP_DCHECK(id >= 0 && id < num_nodes());
    return nodes_[static_cast<std::size_t>(id)];
  }
  const Link& link(LinkId id) const {
    DRTP_DCHECK(id >= 0 && id < num_links());
    return links_[static_cast<std::size_t>(id)];
  }

  std::span<const LinkId> out_links(NodeId id) const {
    return node(id).out_links;
  }
  std::span<const LinkId> in_links(NodeId id) const {
    return node(id).in_links;
  }

  /// Link id of src->dst, or kInvalidLink.
  LinkId FindLink(NodeId src, NodeId dst) const;

  /// The flat CSR view, built once on first use and cached. Safe to call
  /// concurrently from reader threads (the sweep runner shares one const
  /// Topology across its pool); any AddNode/AddLink invalidates the cache,
  /// so build fully before routing — which the generators all do.
  const Csr& csr() const;

  /// Directed links per node (== undirected degree when all links are
  /// duplex pairs) — the paper's "average node degree E".
  double AverageDegree() const;

  /// True iff every node can reach every other over directed links.
  bool IsConnected() const;

  /// Nodes adjacent via outgoing links.
  std::vector<NodeId> Neighbors(NodeId id) const;

  // --- shared-risk link groups ---------------------------------------------
  // Correlated-failure metadata: links in the same group fail together
  // (fault::ApplySrlgFailure). Groups are dense 0-based ids; assignment is
  // optional and typically covers duplex pairs symmetrically.

  /// Tags `l` as a member of group `g` (g >= 0). Re-assigning moves the
  /// link between groups.
  void AssignSrlg(LinkId l, SrlgId g);

  /// Group of `l`, or kInvalidSrlg when untagged. Links added after the
  /// first AssignSrlg are untagged until assigned; the size comparison
  /// (not just an emptiness check) keeps the read in bounds even if
  /// srlg_of_ ever lags behind the link count.
  SrlgId srlg(LinkId l) const {
    DRTP_DCHECK(l >= 0 && l < num_links());
    return static_cast<std::size_t>(l) < srlg_of_.size()
               ? srlg_of_[static_cast<std::size_t>(l)]
               : kInvalidSrlg;
  }

  /// 1 + highest assigned group id (0 when no link is tagged).
  int num_srlgs() const { return static_cast<int>(srlg_links_.size()); }

  bool has_srlgs() const { return num_srlgs() > 0; }

  /// Members of group `g`, ascending by link id.
  std::span<const LinkId> LinksInSrlg(SrlgId g) const {
    DRTP_CHECK(g >= 0 && g < num_srlgs());
    return srlg_links_[static_cast<std::size_t>(g)];
  }

 private:
  void InvalidateCsr() {
    csr_published_.store(nullptr, std::memory_order_release);
    csr_cache_.reset();
  }

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<SrlgId> srlg_of_;              // empty until first AssignSrlg
  std::vector<std::vector<LinkId>> srlg_links_;

  // Lazily built CSR view: double-checked publication so concurrent
  // readers pay one acquire load after the first build.
  mutable std::atomic<const Csr*> csr_published_{nullptr};
  mutable std::unique_ptr<const Csr> csr_cache_;
  mutable std::mutex csr_mutex_;
};

}  // namespace drtp::net
