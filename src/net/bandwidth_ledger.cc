#include "net/bandwidth_ledger.h"

#include <algorithm>

namespace drtp::net {

BandwidthLedger::BandwidthLedger(const Topology& topo) {
  entries_.reserve(static_cast<std::size_t>(topo.num_links()));
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    entries_.push_back(Entry{.total = topo.link(l).capacity});
  }
}

bool BandwidthLedger::ReservePrime(LinkId l, Bandwidth bw) {
  DRTP_CHECK(bw >= 0);
  Entry& e = At(l);
  if (e.total - e.prime - e.spare < bw) return false;
  e.prime += bw;
  return true;
}

void BandwidthLedger::ReleasePrime(LinkId l, Bandwidth bw) {
  DRTP_CHECK(bw >= 0);
  Entry& e = At(l);
  DRTP_CHECK_MSG(e.prime >= bw, "releasing " << bw << " of " << e.prime
                                             << " prime kbit/s on link " << l);
  e.prime -= bw;
}

bool BandwidthLedger::ReservePrimeForced(LinkId l, Bandwidth bw) {
  DRTP_CHECK(bw >= 0);
  Entry& e = At(l);
  if (e.total - e.prime < bw) return false;
  const Bandwidth from_free = std::min(bw, e.total - e.prime - e.spare);
  const Bandwidth from_spare = bw - from_free;
  DRTP_CHECK(e.spare >= from_spare);
  e.spare -= from_spare;
  e.prime += bw;
  return true;
}

Bandwidth BandwidthLedger::GrowSpare(LinkId l, Bandwidth want) {
  DRTP_CHECK(want >= 0);
  Entry& e = At(l);
  const Bandwidth granted = std::min(want, e.total - e.prime - e.spare);
  e.spare += granted;
  return granted;
}

void BandwidthLedger::ShrinkSpare(LinkId l, Bandwidth amount) {
  DRTP_CHECK(amount >= 0);
  Entry& e = At(l);
  DRTP_CHECK_MSG(e.spare >= amount, "shrinking " << amount << " of " << e.spare
                                                 << " spare kbit/s on link "
                                                 << l);
  e.spare -= amount;
}

Bandwidth BandwidthLedger::TotalCapacity() const {
  Bandwidth sum = 0;
  for (const Entry& e : entries_) sum += e.total;
  return sum;
}

Bandwidth BandwidthLedger::TotalPrime() const {
  Bandwidth sum = 0;
  for (const Entry& e : entries_) sum += e.prime;
  return sum;
}

Bandwidth BandwidthLedger::TotalSpare() const {
  Bandwidth sum = 0;
  for (const Entry& e : entries_) sum += e.spare;
  return sum;
}

void BandwidthLedger::CheckInvariants() const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    DRTP_CHECK_MSG(e.prime >= 0 && e.spare >= 0 &&
                       e.prime + e.spare <= e.total,
                   "link " << i << " pools total=" << e.total
                           << " prime=" << e.prime << " spare=" << e.spare);
  }
}

}  // namespace drtp::net
