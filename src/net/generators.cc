#include "net/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace drtp::net {
namespace {

double Distance(const Node& a, const Node& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

Topology MakeWaxman(const WaxmanConfig& config) {
  DRTP_CHECK(config.nodes >= 2);
  DRTP_CHECK(config.avg_degree >= 2.0);  // need >= spanning-tree density
  DRTP_CHECK(config.alpha > 0.0 && config.beta > 0.0);
  Rng rng(config.seed);

  Topology topo;
  for (int i = 0; i < config.nodes; ++i) {
    topo.AddNode(rng.UniformReal(0.0, 1.0), rng.UniformReal(0.0, 1.0));
  }

  double diameter = 0.0;
  for (NodeId u = 0; u < config.nodes; ++u) {
    for (NodeId v = u + 1; v < config.nodes; ++v) {
      diameter = std::max(diameter, Distance(topo.node(u), topo.node(v)));
    }
  }
  if (diameter <= 0.0) diameter = 1.0;  // coincident points; degenerate

  const auto waxman_p = [&](NodeId u, NodeId v) {
    const double d = Distance(topo.node(u), topo.node(v));
    const double p = config.beta * std::exp(-d / (config.alpha * diameter));
    return std::min(1.0, p);
  };

  // Connectivity first: attach each node (in random order) to a random
  // already-attached node, biased by the Waxman probability so the tree
  // keeps the model's locality.
  std::vector<NodeId> order(static_cast<std::size_t>(config.nodes));
  for (int i = 0; i < config.nodes; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.Shuffle(order);
  std::vector<NodeId> attached{order[0]};
  for (std::size_t i = 1; i < order.size(); ++i) {
    const NodeId u = order[i];
    // Weighted pick over attached nodes; fall back to uniform if all
    // weights underflow.
    double total = 0.0;
    for (NodeId v : attached) total += waxman_p(u, v);
    NodeId chosen = attached[rng.Index(attached.size())];
    if (total > 0.0) {
      double x = rng.UniformReal(0.0, total);
      for (NodeId v : attached) {
        x -= waxman_p(u, v);
        if (x <= 0.0) {
          chosen = v;
          break;
        }
      }
    }
    topo.AddDuplexLink(u, chosen, config.link_capacity);
    attached.push_back(u);
  }

  // Bring every node up to the minimum degree with Waxman-weighted picks
  // among non-neighbors (closest-by-probability first via weighted draw).
  for (NodeId u = 0; u < config.nodes; ++u) {
    while (static_cast<int>(topo.out_links(u).size()) < config.min_degree) {
      std::vector<NodeId> candidates;
      for (NodeId v = 0; v < config.nodes; ++v) {
        if (v != u && topo.FindLink(u, v) == kInvalidLink) {
          candidates.push_back(v);
        }
      }
      DRTP_CHECK_MSG(!candidates.empty(),
                     "min_degree " << config.min_degree << " infeasible");
      double total = 0.0;
      for (NodeId v : candidates) total += waxman_p(u, v);
      NodeId chosen = candidates[rng.Index(candidates.size())];
      if (total > 0.0) {
        double x = rng.UniformReal(0.0, total);
        for (NodeId v : candidates) {
          x -= waxman_p(u, v);
          if (x <= 0.0) {
            chosen = v;
            break;
          }
        }
      }
      topo.AddDuplexLink(u, chosen, config.link_capacity);
    }
  }

  // Densify to the target average degree with rejection sampling over
  // unlinked pairs.
  const auto target_duplex = static_cast<int>(
      std::llround(config.nodes * config.avg_degree / 2.0));
  const int max_duplex = config.nodes * (config.nodes - 1) / 2;
  DRTP_CHECK_MSG(target_duplex <= max_duplex,
                 "avg_degree " << config.avg_degree << " infeasible for "
                               << config.nodes << " nodes");
  int duplex = topo.num_links() / 2;  // tree + min-degree edges so far
  // Candidate list of absent pairs, reshuffled passes until the target is
  // met; each pass accepts pairs with the Waxman probability so the final
  // edge set follows the model's distance bias.
  std::vector<std::pair<NodeId, NodeId>> absent;
  for (NodeId u = 0; u < config.nodes; ++u) {
    for (NodeId v = u + 1; v < config.nodes; ++v) {
      if (topo.FindLink(u, v) == kInvalidLink) absent.emplace_back(u, v);
    }
  }
  while (duplex < target_duplex && !absent.empty()) {
    rng.Shuffle(absent);
    std::vector<std::pair<NodeId, NodeId>> still_absent;
    for (const auto& [u, v] : absent) {
      if (duplex < target_duplex && rng.Bernoulli(waxman_p(u, v))) {
        topo.AddDuplexLink(u, v, config.link_capacity);
        ++duplex;
      } else {
        still_absent.emplace_back(u, v);
      }
    }
    absent = std::move(still_absent);
  }

  DRTP_CHECK(topo.IsConnected());

  if (config.srlg_groups > 0) {
    // Drawn after all topology randomness so srlg_groups == 0 reproduces
    // the exact pre-SRLG graphs for any given seed.
    AssignGeoSrlgs(topo, config.srlg_groups, rng);
  }
  return topo;
}

void AssignGeoSrlgs(Topology& topo, int groups, Rng& rng) {
  DRTP_CHECK(groups > 0);
  struct Center {
    double x, y;
  };
  std::vector<Center> centers;
  centers.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    centers.push_back(
        Center{rng.UniformReal(0.0, 1.0), rng.UniformReal(0.0, 1.0)});
  }
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(l);
    if (link.reverse != kInvalidLink && link.reverse < l) continue;
    const Node& a = topo.node(link.src);
    const Node& b = topo.node(link.dst);
    const double mx = (a.x + b.x) / 2.0;
    const double my = (a.y + b.y) / 2.0;
    SrlgId best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (int g = 0; g < groups; ++g) {
      const double dx = mx - centers[static_cast<std::size_t>(g)].x;
      const double dy = my - centers[static_cast<std::size_t>(g)].y;
      const double d2 = dx * dx + dy * dy;
      if (d2 < best_d2) {
        best_d2 = d2;
        best = g;
      }
    }
    topo.AssignSrlg(l, best);
    if (link.reverse != kInvalidLink) topo.AssignSrlg(link.reverse, best);
  }
}

Topology MakeGrid(int rows, int cols, Bandwidth link_capacity) {
  DRTP_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2);
  Topology topo;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      topo.AddNode(static_cast<double>(c), static_cast<double>(r));
    }
  }
  const auto id = [cols](int r, int c) { return NodeId(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) topo.AddDuplexLink(id(r, c), id(r, c + 1), link_capacity);
      if (r + 1 < rows) topo.AddDuplexLink(id(r, c), id(r + 1, c), link_capacity);
    }
  }
  return topo;
}

Topology MakeRing(int n, Bandwidth link_capacity) {
  DRTP_CHECK(n >= 3);
  Topology topo;
  for (int i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * i / n;
    topo.AddNode(0.5 + 0.5 * std::cos(angle), 0.5 + 0.5 * std::sin(angle));
  }
  for (int i = 0; i < n; ++i) {
    topo.AddDuplexLink(i, (i + 1) % n, link_capacity);
  }
  return topo;
}

Topology MakeStar(int leaves, Bandwidth link_capacity) {
  DRTP_CHECK(leaves >= 2);
  Topology topo;
  const NodeId hub = topo.AddNode(0.5, 0.5);
  for (int i = 0; i < leaves; ++i) {
    const double angle = 2.0 * M_PI * i / leaves;
    const NodeId leaf =
        topo.AddNode(0.5 + 0.4 * std::cos(angle), 0.5 + 0.4 * std::sin(angle));
    topo.AddDuplexLink(hub, leaf, link_capacity);
  }
  return topo;
}

Topology MakeHierarchical(const HierConfig& config) {
  const int B = config.backbone;
  DRTP_CHECK(B >= 3);
  DRTP_CHECK(config.pops_per_backbone >= 0);
  DRTP_CHECK(config.metro_per_pop >= 0);
  DRTP_CHECK(config.chord_frac >= 0.0);
  DRTP_CHECK(config.backbone_capacity > 0 && config.pop_capacity > 0 &&
             config.metro_capacity > 0);
  Rng rng(config.seed);
  Topology topo;

  // Tier 1: backbone ring on an inner circle, plus random non-adjacent
  // chords (long-haul express links).
  for (int b = 0; b < B; ++b) {
    const double angle = 2.0 * M_PI * b / B;
    topo.AddNode(0.5 + 0.2 * std::cos(angle), 0.5 + 0.2 * std::sin(angle));
  }
  for (int b = 0; b < B; ++b) {
    topo.AddDuplexLink(b, (b + 1) % B, config.backbone_capacity);
  }
  const auto chords = static_cast<int>(std::llround(config.chord_frac * B));
  if (chords > 0) {
    std::vector<std::pair<NodeId, NodeId>> candidates;
    for (NodeId u = 0; u < B; ++u) {
      for (NodeId v = u + 1; v < B; ++v) {
        if (topo.FindLink(u, v) == kInvalidLink) candidates.emplace_back(u, v);
      }
    }
    rng.Shuffle(candidates);
    const auto take = std::min<std::size_t>(static_cast<std::size_t>(chords),
                                            candidates.size());
    for (std::size_t i = 0; i < take; ++i) {
      topo.AddDuplexLink(candidates[i].first, candidates[i].second,
                         config.backbone_capacity);
    }
  }

  // Tier 2: dual-homed PoPs on a middle circle. PoP p homes to backbone
  // router p % B and its ring successor, so each backbone router serves
  // pops_per_backbone PoPs and no single backbone failure strands one.
  const int num_pops = B * config.pops_per_backbone;
  std::vector<NodeId> pops;
  pops.reserve(static_cast<std::size_t>(num_pops));
  for (int p = 0; p < num_pops; ++p) {
    const NodeId h1 = p % B;
    const NodeId h2 = (h1 + 1) % B;
    const int slot = p / B;  // position among h1's PoPs
    const double angle =
        2.0 * M_PI *
        (h1 + (slot + 1.0) / (config.pops_per_backbone + 1.0)) / B;
    const NodeId pop = topo.AddNode(0.5 + 0.35 * std::cos(angle),
                                    0.5 + 0.35 * std::sin(angle));
    topo.AddDuplexLink(pop, h1, config.pop_capacity);
    topo.AddDuplexLink(pop, h2, config.pop_capacity);
    pops.push_back(pop);
  }

  // Tier 3: metro access ring per PoP, closing through the PoP so every
  // access node keeps two disjoint uplink paths.
  const int M = config.metro_per_pop;
  for (int p = 0; p < num_pops; ++p) {
    if (M == 0) break;
    const NodeId pop = pops[static_cast<std::size_t>(p)];
    const double px = topo.node(pop).x;
    const double py = topo.node(pop).y;
    std::vector<NodeId> metro;
    metro.reserve(static_cast<std::size_t>(M));
    for (int m = 0; m < M; ++m) {
      const double angle = 2.0 * M_PI * m / M;
      metro.push_back(topo.AddNode(px + 0.06 * std::cos(angle),
                                   py + 0.06 * std::sin(angle)));
    }
    if (M == 1) {
      // A one-node "ring" would need a parallel pop link; dual-home the
      // lone access node to the PoP and the PoP's first backbone home.
      topo.AddDuplexLink(pop, metro[0], config.metro_capacity);
      topo.AddDuplexLink(metro[0], p % B, config.metro_capacity);
    } else {
      topo.AddDuplexLink(pop, metro[0], config.metro_capacity);
      for (int m = 0; m + 1 < M; ++m) {
        topo.AddDuplexLink(metro[static_cast<std::size_t>(m)],
                           metro[static_cast<std::size_t>(m) + 1],
                           config.metro_capacity);
      }
      topo.AddDuplexLink(metro[static_cast<std::size_t>(M) - 1], pop,
                         config.metro_capacity);
    }
  }

  DRTP_CHECK(topo.IsConnected());
  if (config.srlg_groups > 0) AssignGeoSrlgs(topo, config.srlg_groups, rng);
  return topo;
}

Topology MakeParallelPaths(int paths, Bandwidth link_capacity) {
  DRTP_CHECK(paths >= 1);
  Topology topo;
  const NodeId s = topo.AddNode(0.0, 0.5);
  const NodeId t = topo.AddNode(1.0, 0.5);
  for (int i = 0; i < paths; ++i) {
    const NodeId relay =
        topo.AddNode(0.5, static_cast<double>(i) / std::max(1, paths - 1));
    topo.AddDuplexLink(s, relay, link_capacity);
    topo.AddDuplexLink(relay, t, link_capacity);
  }
  return topo;
}

}  // namespace drtp::net
