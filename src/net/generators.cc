#include "net/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace drtp::net {
namespace {

double Distance(const Node& a, const Node& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

Topology MakeWaxman(const WaxmanConfig& config) {
  DRTP_CHECK(config.nodes >= 2);
  DRTP_CHECK(config.avg_degree >= 2.0);  // need >= spanning-tree density
  DRTP_CHECK(config.alpha > 0.0 && config.beta > 0.0);
  Rng rng(config.seed);

  Topology topo;
  for (int i = 0; i < config.nodes; ++i) {
    topo.AddNode(rng.UniformReal(0.0, 1.0), rng.UniformReal(0.0, 1.0));
  }

  double diameter = 0.0;
  for (NodeId u = 0; u < config.nodes; ++u) {
    for (NodeId v = u + 1; v < config.nodes; ++v) {
      diameter = std::max(diameter, Distance(topo.node(u), topo.node(v)));
    }
  }
  if (diameter <= 0.0) diameter = 1.0;  // coincident points; degenerate

  const auto waxman_p = [&](NodeId u, NodeId v) {
    const double d = Distance(topo.node(u), topo.node(v));
    const double p = config.beta * std::exp(-d / (config.alpha * diameter));
    return std::min(1.0, p);
  };

  // Connectivity first: attach each node (in random order) to a random
  // already-attached node, biased by the Waxman probability so the tree
  // keeps the model's locality.
  std::vector<NodeId> order(static_cast<std::size_t>(config.nodes));
  for (int i = 0; i < config.nodes; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.Shuffle(order);
  std::vector<NodeId> attached{order[0]};
  for (std::size_t i = 1; i < order.size(); ++i) {
    const NodeId u = order[i];
    // Weighted pick over attached nodes; fall back to uniform if all
    // weights underflow.
    double total = 0.0;
    for (NodeId v : attached) total += waxman_p(u, v);
    NodeId chosen = attached[rng.Index(attached.size())];
    if (total > 0.0) {
      double x = rng.UniformReal(0.0, total);
      for (NodeId v : attached) {
        x -= waxman_p(u, v);
        if (x <= 0.0) {
          chosen = v;
          break;
        }
      }
    }
    topo.AddDuplexLink(u, chosen, config.link_capacity);
    attached.push_back(u);
  }

  // Bring every node up to the minimum degree with Waxman-weighted picks
  // among non-neighbors (closest-by-probability first via weighted draw).
  for (NodeId u = 0; u < config.nodes; ++u) {
    while (static_cast<int>(topo.out_links(u).size()) < config.min_degree) {
      std::vector<NodeId> candidates;
      for (NodeId v = 0; v < config.nodes; ++v) {
        if (v != u && topo.FindLink(u, v) == kInvalidLink) {
          candidates.push_back(v);
        }
      }
      DRTP_CHECK_MSG(!candidates.empty(),
                     "min_degree " << config.min_degree << " infeasible");
      double total = 0.0;
      for (NodeId v : candidates) total += waxman_p(u, v);
      NodeId chosen = candidates[rng.Index(candidates.size())];
      if (total > 0.0) {
        double x = rng.UniformReal(0.0, total);
        for (NodeId v : candidates) {
          x -= waxman_p(u, v);
          if (x <= 0.0) {
            chosen = v;
            break;
          }
        }
      }
      topo.AddDuplexLink(u, chosen, config.link_capacity);
    }
  }

  // Densify to the target average degree with rejection sampling over
  // unlinked pairs.
  const auto target_duplex = static_cast<int>(
      std::llround(config.nodes * config.avg_degree / 2.0));
  const int max_duplex = config.nodes * (config.nodes - 1) / 2;
  DRTP_CHECK_MSG(target_duplex <= max_duplex,
                 "avg_degree " << config.avg_degree << " infeasible for "
                               << config.nodes << " nodes");
  int duplex = topo.num_links() / 2;  // tree + min-degree edges so far
  // Candidate list of absent pairs, reshuffled passes until the target is
  // met; each pass accepts pairs with the Waxman probability so the final
  // edge set follows the model's distance bias.
  std::vector<std::pair<NodeId, NodeId>> absent;
  for (NodeId u = 0; u < config.nodes; ++u) {
    for (NodeId v = u + 1; v < config.nodes; ++v) {
      if (topo.FindLink(u, v) == kInvalidLink) absent.emplace_back(u, v);
    }
  }
  while (duplex < target_duplex && !absent.empty()) {
    rng.Shuffle(absent);
    std::vector<std::pair<NodeId, NodeId>> still_absent;
    for (const auto& [u, v] : absent) {
      if (duplex < target_duplex && rng.Bernoulli(waxman_p(u, v))) {
        topo.AddDuplexLink(u, v, config.link_capacity);
        ++duplex;
      } else {
        still_absent.emplace_back(u, v);
      }
    }
    absent = std::move(still_absent);
  }

  DRTP_CHECK(topo.IsConnected());

  if (config.srlg_groups > 0) {
    // Drawn after all topology randomness so srlg_groups == 0 reproduces
    // the exact pre-SRLG graphs for any given seed.
    struct Center {
      double x, y;
    };
    std::vector<Center> centers;
    centers.reserve(static_cast<std::size_t>(config.srlg_groups));
    for (int g = 0; g < config.srlg_groups; ++g) {
      centers.push_back(
          Center{rng.UniformReal(0.0, 1.0), rng.UniformReal(0.0, 1.0)});
    }
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      const Link& link = topo.link(l);
      if (link.reverse != kInvalidLink && link.reverse < l) continue;
      const Node& a = topo.node(link.src);
      const Node& b = topo.node(link.dst);
      const double mx = (a.x + b.x) / 2.0;
      const double my = (a.y + b.y) / 2.0;
      SrlgId best = 0;
      double best_d2 = std::numeric_limits<double>::infinity();
      for (int g = 0; g < config.srlg_groups; ++g) {
        const double dx = mx - centers[static_cast<std::size_t>(g)].x;
        const double dy = my - centers[static_cast<std::size_t>(g)].y;
        const double d2 = dx * dx + dy * dy;
        if (d2 < best_d2) {
          best_d2 = d2;
          best = g;
        }
      }
      topo.AssignSrlg(l, best);
      if (link.reverse != kInvalidLink) topo.AssignSrlg(link.reverse, best);
    }
  }
  return topo;
}

Topology MakeGrid(int rows, int cols, Bandwidth link_capacity) {
  DRTP_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2);
  Topology topo;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      topo.AddNode(static_cast<double>(c), static_cast<double>(r));
    }
  }
  const auto id = [cols](int r, int c) { return NodeId(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) topo.AddDuplexLink(id(r, c), id(r, c + 1), link_capacity);
      if (r + 1 < rows) topo.AddDuplexLink(id(r, c), id(r + 1, c), link_capacity);
    }
  }
  return topo;
}

Topology MakeRing(int n, Bandwidth link_capacity) {
  DRTP_CHECK(n >= 3);
  Topology topo;
  for (int i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * i / n;
    topo.AddNode(0.5 + 0.5 * std::cos(angle), 0.5 + 0.5 * std::sin(angle));
  }
  for (int i = 0; i < n; ++i) {
    topo.AddDuplexLink(i, (i + 1) % n, link_capacity);
  }
  return topo;
}

Topology MakeStar(int leaves, Bandwidth link_capacity) {
  DRTP_CHECK(leaves >= 2);
  Topology topo;
  const NodeId hub = topo.AddNode(0.5, 0.5);
  for (int i = 0; i < leaves; ++i) {
    const double angle = 2.0 * M_PI * i / leaves;
    const NodeId leaf =
        topo.AddNode(0.5 + 0.4 * std::cos(angle), 0.5 + 0.4 * std::sin(angle));
    topo.AddDuplexLink(hub, leaf, link_capacity);
  }
  return topo;
}

Topology MakeParallelPaths(int paths, Bandwidth link_capacity) {
  DRTP_CHECK(paths >= 1);
  Topology topo;
  const NodeId s = topo.AddNode(0.0, 0.5);
  const NodeId t = topo.AddNode(1.0, 0.5);
  for (int i = 0; i < paths; ++i) {
    const NodeId relay =
        topo.AddNode(0.5, static_cast<double>(i) / std::max(1, paths - 1));
    topo.AddDuplexLink(s, relay, link_capacity);
    topo.AddDuplexLink(relay, t, link_capacity);
  }
  return topo;
}

}  // namespace drtp::net
