// Per-link bandwidth accounting.
//
// Each directed link's capacity is split three ways (§2.1 notation):
//   prime  — bandwidth reserved by primary channels (prime_bw),
//   spare  — the shared pool reserved for multiplexed backups (spare_bw),
//   free   — unallocated (usable by best-effort traffic).
// The ledger enforces total == prime + spare + free exactly (integral
// kbit/s) and never lets a pool go negative.
#pragma once

#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "net/topology.h"

namespace drtp::net {

/// Mutable bandwidth state for every link of a fixed topology.
class BandwidthLedger {
 public:
  explicit BandwidthLedger(const Topology& topo);

  Bandwidth total(LinkId l) const { return At(l).total; }
  Bandwidth prime(LinkId l) const { return At(l).prime; }
  Bandwidth spare(LinkId l) const { return At(l).spare; }
  Bandwidth free(LinkId l) const {
    const Entry& e = At(l);
    return e.total - e.prime - e.spare;
  }

  /// True iff `bw` more primary bandwidth fits in the free pool.
  bool CanReservePrime(LinkId l, Bandwidth bw) const {
    DRTP_CHECK(bw >= 0);
    return free(l) >= bw;
  }

  /// Moves `bw` from free to prime; false (and no change) if it does not fit.
  [[nodiscard]] bool ReservePrime(LinkId l, Bandwidth bw);

  /// Moves `bw` from prime back to free. Requires that much to be reserved.
  void ReleasePrime(LinkId l, Bandwidth bw);

  /// Reserves prime bandwidth drawing first from free, then by raiding the
  /// spare pool (backup activation promotes a channel using the very spare
  /// resources reserved for it, §5). False — and no change — only when
  /// total - prime < bw.
  [[nodiscard]] bool ReservePrimeForced(LinkId l, Bandwidth bw);

  /// Grows the spare pool by up to `want`, limited by the free pool;
  /// returns the amount actually granted (possibly 0 — the caller decides
  /// whether to overbook, per §5).
  Bandwidth GrowSpare(LinkId l, Bandwidth want);

  /// Returns `amount` from spare to free. Requires that much spare.
  void ShrinkSpare(LinkId l, Bandwidth amount);

  /// Network-wide aggregates.
  Bandwidth TotalCapacity() const;
  Bandwidth TotalPrime() const;
  Bandwidth TotalSpare() const;

  int num_links() const { return static_cast<int>(entries_.size()); }

  /// Throws CheckError if any link's pools are inconsistent.
  void CheckInvariants() const;

 private:
  struct Entry {
    Bandwidth total = 0;
    Bandwidth prime = 0;
    Bandwidth spare = 0;
  };

  const Entry& At(LinkId l) const {
    DRTP_DCHECK(l >= 0 && l < num_links());
    return entries_[static_cast<std::size_t>(l)];
  }
  Entry& At(LinkId l) {
    DRTP_DCHECK(l >= 0 && l < num_links());
    return entries_[static_cast<std::size_t>(l)];
  }

  std::vector<Entry> entries_;
};

}  // namespace drtp::net
