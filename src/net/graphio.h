// Topology serialization: a line-oriented text format (round-trippable)
// and Graphviz DOT export for visual inspection of generated networks.
#pragma once

#include <iosfwd>
#include <string>

#include "net/topology.h"

namespace drtp::net {

/// Writes the topology in the text format below; ReadTopology inverts it.
///
///   drtp-topology <version>      (1, or 2 when any SRLG tag is present)
///   nodes <n>
///   node <id> <x> <y>            (n lines)
///   links <m>
///   link <id> <src> <dst> <capacity_kbps> <reverse>
///   srlgs <k>                    (version 2 only)
///   srlg <link> <group>          (k lines, ascending link id)
void WriteTopology(const Topology& topo, std::ostream& os);

/// Parses the text format (either version); throws drtp::ParseError with
/// the offending 1-based line on malformed, truncated, or out-of-range
/// input — never a CHECK failure, never silent garbage.
Topology ReadTopology(std::istream& is);

/// Round-trip helpers via std::string.
std::string TopologyToString(const Topology& topo);
Topology TopologyFromString(const std::string& text);

/// Graphviz DOT (undirected rendering of duplex pairs).
std::string TopologyToDot(const Topology& topo);

}  // namespace drtp::net
