#include "net/graphio.h"

#include <map>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace drtp::net {

void WriteTopology(const Topology& topo, std::ostream& os) {
  os.precision(17);  // coordinates must round-trip exactly
  os << "drtp-topology 1\n";
  os << "nodes " << topo.num_nodes() << "\n";
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const Node& node = topo.node(n);
    os << "node " << n << " " << node.x << " " << node.y << "\n";
  }
  os << "links " << topo.num_links() << "\n";
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(l);
    os << "link " << l << " " << link.src << " " << link.dst << " "
       << link.capacity << " " << link.reverse << "\n";
  }
}

Topology ReadTopology(std::istream& is) {
  std::string word;
  int version = 0;
  DRTP_CHECK_MSG(is >> word >> version && word == "drtp-topology" &&
                     version == 1,
                 "bad topology header");
  int n = 0;
  DRTP_CHECK(is >> word >> n && word == "nodes" && n >= 0);
  Topology topo;
  for (int i = 0; i < n; ++i) {
    int id = 0;
    double x = 0, y = 0;
    DRTP_CHECK(is >> word >> id >> x >> y && word == "node" && id == i);
    topo.AddNode(x, y);
  }
  int m = 0;
  DRTP_CHECK(is >> word >> m && word == "links" && m >= 0);
  // Links must be re-added in id order; reverse pointers are re-derived and
  // validated against the file.
  struct Row {
    LinkId id, src, dst, reverse;
    Bandwidth capacity;
  };
  std::vector<Row> rows;
  rows.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    Row r{};
    DRTP_CHECK(is >> word >> r.id >> r.src >> r.dst >> r.capacity >>
                   r.reverse &&
               word == "link" && r.id == i);
    rows.push_back(r);
  }
  // Duplex pairs appear as (ab, ba) with mutual reverse ids; AddDuplexLink
  // requires both halves at once, so stitch them as encountered.
  std::vector<char> added(rows.size(), 0);
  for (const Row& r : rows) {
    if (added[static_cast<std::size_t>(r.id)]) continue;
    if (r.reverse == kInvalidLink) {
      const LinkId got = topo.AddLink(r.src, r.dst, r.capacity);
      DRTP_CHECK(got == r.id);
      added[static_cast<std::size_t>(r.id)] = 1;
    } else {
      DRTP_CHECK_MSG(r.reverse == r.id + 1, "duplex halves must be adjacent");
      const Row& rev = rows[static_cast<std::size_t>(r.reverse)];
      DRTP_CHECK(rev.reverse == r.id && rev.src == r.dst && rev.dst == r.src &&
                 rev.capacity == r.capacity);
      const auto [ab, ba] = topo.AddDuplexLink(r.src, r.dst, r.capacity);
      DRTP_CHECK(ab == r.id && ba == rev.id);
      added[static_cast<std::size_t>(r.id)] = 1;
      added[static_cast<std::size_t>(rev.id)] = 1;
    }
  }
  return topo;
}

std::string TopologyToString(const Topology& topo) {
  std::ostringstream os;
  WriteTopology(topo, os);
  return os.str();
}

Topology TopologyFromString(const std::string& text) {
  std::istringstream is(text);
  return ReadTopology(is);
}

std::string TopologyToDot(const Topology& topo) {
  std::ostringstream os;
  os << "graph drtp {\n  node [shape=circle];\n";
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const Node& node = topo.node(n);
    os << "  n" << n << " [pos=\"" << node.x << "," << node.y << "!\"];\n";
  }
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(l);
    // Render each duplex pair once; keep strictly one-way links directed.
    if (link.reverse != kInvalidLink && link.reverse < l) continue;
    os << "  n" << link.src << " -- n" << link.dst << " [label=\"L" << l;
    if (link.reverse != kInvalidLink) os << "/L" << link.reverse;
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace drtp::net
