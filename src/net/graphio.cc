#include "net/graphio.h"

#include <map>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/error.h"
#include "common/lineio.h"

namespace drtp::net {

using lineio::ParseCount;
using lineio::ParseLine;

void WriteTopology(const Topology& topo, std::ostream& os) {
  os.precision(17);  // coordinates must round-trip exactly
  os << "drtp-topology " << (topo.has_srlgs() ? 2 : 1) << "\n";
  os << "nodes " << topo.num_nodes() << "\n";
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const Node& node = topo.node(n);
    os << "node " << n << " " << node.x << " " << node.y << "\n";
  }
  os << "links " << topo.num_links() << "\n";
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(l);
    os << "link " << l << " " << link.src << " " << link.dst << " "
       << link.capacity << " " << link.reverse << "\n";
  }
  if (topo.has_srlgs()) {
    int tagged = 0;
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      if (topo.srlg(l) != kInvalidSrlg) ++tagged;
    }
    os << "srlgs " << tagged << "\n";
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      if (topo.srlg(l) != kInvalidSrlg) {
        os << "srlg " << l << " " << topo.srlg(l) << "\n";
      }
    }
  }
}

Topology ReadTopology(std::istream& is) {
  LineReader in(is);
  int version = 0;
  ParseLine(in.Next("header"), in.lineno(), "drtp-topology", version);
  if (version != 1 && version != 2) {
    throw ParseError("unsupported topology version " + std::to_string(version),
                     in.lineno());
  }
  const int n = ParseCount(in, "nodes");
  Topology topo;
  for (int i = 0; i < n; ++i) {
    int id = 0;
    double x = 0, y = 0;
    ParseLine(in.Next("node"), in.lineno(), "node", id, x, y);
    if (id != i) {
      throw ParseError("node ids must be dense and ascending; expected " +
                           std::to_string(i) + ", got " + std::to_string(id),
                       in.lineno());
    }
    topo.AddNode(x, y);
  }
  const int m = ParseCount(in, "links");
  // Links must be re-added in id order; reverse pointers are re-derived and
  // validated against the file.
  struct Row {
    LinkId id, src, dst, reverse;
    Bandwidth capacity;
    std::int64_t lineno;
  };
  std::vector<Row> rows;
  rows.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    Row r{};
    ParseLine(in.Next("link"), in.lineno(), "link", r.id, r.src, r.dst,
              r.capacity, r.reverse);
    r.lineno = in.lineno();
    if (r.id != i) {
      throw ParseError("link ids must be dense and ascending; expected " +
                           std::to_string(i) + ", got " + std::to_string(r.id),
                       r.lineno);
    }
    if (r.src < 0 || r.src >= n || r.dst < 0 || r.dst >= n) {
      throw ParseError("link endpoint out of range", r.lineno);
    }
    if (r.src == r.dst) throw ParseError("self-loop link", r.lineno);
    if (r.capacity <= 0) throw ParseError("non-positive capacity", r.lineno);
    if (r.reverse != kInvalidLink && (r.reverse < 0 || r.reverse >= m)) {
      throw ParseError("reverse link out of range", r.lineno);
    }
    rows.push_back(r);
  }
  // Duplex pairs appear as (ab, ba) with mutual reverse ids; AddDuplexLink
  // requires both halves at once, so stitch them as encountered.
  std::vector<char> added(rows.size(), 0);
  for (const Row& r : rows) {
    if (added[static_cast<std::size_t>(r.id)]) continue;
    try {
      if (r.reverse == kInvalidLink) {
        const LinkId got = topo.AddLink(r.src, r.dst, r.capacity);
        DRTP_CHECK(got == r.id);
        added[static_cast<std::size_t>(r.id)] = 1;
      } else {
        if (r.reverse != r.id + 1) {
          throw ParseError("duplex halves must be adjacent", r.lineno);
        }
        const Row& rev = rows[static_cast<std::size_t>(r.reverse)];
        if (rev.reverse != r.id || rev.src != r.dst || rev.dst != r.src ||
            rev.capacity != r.capacity) {
          throw ParseError("mismatched duplex halves", rev.lineno);
        }
        const auto [ab, ba] = topo.AddDuplexLink(r.src, r.dst, r.capacity);
        DRTP_CHECK(ab == r.id && ba == rev.id);
        added[static_cast<std::size_t>(r.id)] = 1;
        added[static_cast<std::size_t>(rev.id)] = 1;
      }
    } catch (const CheckError& e) {
      // AddLink rejects duplicates and self-loops by invariant; in a loader
      // those are input defects, not ours.
      throw ParseError(std::string("invalid link structure: ") + e.what(),
                       r.lineno);
    }
  }
  if (version >= 2) {
    const int k = ParseCount(in, "srlgs");
    for (int i = 0; i < k; ++i) {
      LinkId l = kInvalidLink;
      SrlgId g = kInvalidSrlg;
      ParseLine(in.Next("srlg"), in.lineno(), "srlg", l, g);
      if (l < 0 || l >= m) throw ParseError("srlg link out of range", in.lineno());
      if (g < 0 || g > kMaxLineIoCount) {
        throw ParseError("srlg group out of range", in.lineno());
      }
      topo.AssignSrlg(l, g);
    }
  }
  if (in.HasTrailing()) {
    throw ParseError("trailing content after topology", in.lineno());
  }
  return topo;
}

std::string TopologyToString(const Topology& topo) {
  std::ostringstream os;
  WriteTopology(topo, os);
  return os.str();
}

Topology TopologyFromString(const std::string& text) {
  std::istringstream is(text);
  return ReadTopology(is);
}

std::string TopologyToDot(const Topology& topo) {
  std::ostringstream os;
  os << "graph drtp {\n  node [shape=circle];\n";
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const Node& node = topo.node(n);
    os << "  n" << n << " [pos=\"" << node.x << "," << node.y << "!\"];\n";
  }
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(l);
    // Render each duplex pair once; keep strictly one-way links directed.
    if (link.reverse != kInvalidLink && link.reverse < l) continue;
    os << "  n" << link.src << " -- n" << link.dst << " [label=\"L" << l;
    if (link.reverse != kInvalidLink) os << "/L" << link.reverse;
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace drtp::net
