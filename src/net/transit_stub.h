// Transit-stub topology generator (Zegura/GT-ITM style).
//
// The paper evaluates on flat Waxman graphs; real internets are
// hierarchical — a well-connected transit core with stub domains hanging
// off it. This generator builds such a hierarchy so the routing schemes
// can be exercised where path diversity is asymmetric: rich in the core,
// scarce toward the stubs. Used by the generality appendix bench.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "net/topology.h"

namespace drtp::net {

struct TransitStubConfig {
  /// Transit-core nodes, connected as a ring plus random chords.
  int transit_nodes = 8;
  /// Extra random chords in the core beyond the ring.
  int transit_chords = 4;
  /// Stub domains attached to each transit node.
  int stubs_per_transit = 2;
  /// Nodes per stub domain (connected ring when >= 3, else clique).
  int stub_size = 3;
  /// Stub domains get a second uplink to another transit node with this
  /// probability (multi-homing — gives stubs a disjoint escape route).
  double multihome_prob = 0.5;
  /// Core links are fatter than stub links by this factor.
  int transit_capacity_factor = 4;
  Bandwidth stub_capacity = Mbps(30);
  std::uint64_t seed = 1;
};

/// Description of where each node landed, for tests and traffic steering.
struct TransitStubLayout {
  std::vector<NodeId> transit;             // core node ids
  std::vector<std::vector<NodeId>> stubs;  // per-domain node ids
};

/// Builds the hierarchy; layout (if non-null) receives the node roles.
Topology MakeTransitStub(const TransitStubConfig& config,
                         TransitStubLayout* layout = nullptr);

}  // namespace drtp::net
