#include "net/transit_stub.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace drtp::net {

Topology MakeTransitStub(const TransitStubConfig& config,
                         TransitStubLayout* layout) {
  DRTP_CHECK(config.transit_nodes >= 3);
  DRTP_CHECK(config.transit_chords >= 0);
  DRTP_CHECK(config.stubs_per_transit >= 0);
  DRTP_CHECK(config.stub_size >= 1);
  DRTP_CHECK(config.multihome_prob >= 0.0 && config.multihome_prob <= 1.0);
  DRTP_CHECK(config.transit_capacity_factor >= 1);
  DRTP_CHECK(config.stub_capacity > 0);
  Rng rng(config.seed);

  Topology topo;
  TransitStubLayout local;
  const Bandwidth core_cap =
      config.stub_capacity * config.transit_capacity_factor;

  // Transit core: ring + random chords, laid out on an inner circle.
  for (int i = 0; i < config.transit_nodes; ++i) {
    const double angle = 2.0 * M_PI * i / config.transit_nodes;
    local.transit.push_back(
        topo.AddNode(0.5 + 0.2 * std::cos(angle), 0.5 + 0.2 * std::sin(angle)));
  }
  for (int i = 0; i < config.transit_nodes; ++i) {
    topo.AddDuplexLink(local.transit[static_cast<std::size_t>(i)],
                       local.transit[static_cast<std::size_t>(
                           (i + 1) % config.transit_nodes)],
                       core_cap);
  }
  int chords = 0;
  int guard = 0;
  while (chords < config.transit_chords &&
         guard++ < 100 * (config.transit_chords + 1)) {
    const NodeId a = local.transit[rng.Index(local.transit.size())];
    const NodeId b = local.transit[rng.Index(local.transit.size())];
    if (a == b || topo.FindLink(a, b) != kInvalidLink) continue;
    topo.AddDuplexLink(a, b, core_cap);
    ++chords;
  }

  // Stub domains: small rings (cliques when < 3 nodes) with one uplink to
  // their transit node and an optional second uplink elsewhere.
  for (int t = 0; t < config.transit_nodes; ++t) {
    for (int s = 0; s < config.stubs_per_transit; ++s) {
      std::vector<NodeId> domain;
      const double base_angle =
          2.0 * M_PI * (t + (s + 1.0) / (config.stubs_per_transit + 1.0)) /
          config.transit_nodes;
      for (int k = 0; k < config.stub_size; ++k) {
        const double r = 0.38 + 0.04 * k;
        domain.push_back(topo.AddNode(0.5 + r * std::cos(base_angle),
                                      0.5 + r * std::sin(base_angle)));
      }
      if (config.stub_size >= 3) {
        for (int k = 0; k < config.stub_size; ++k) {
          topo.AddDuplexLink(
              domain[static_cast<std::size_t>(k)],
              domain[static_cast<std::size_t>((k + 1) % config.stub_size)],
              config.stub_capacity);
        }
      } else if (config.stub_size == 2) {
        topo.AddDuplexLink(domain[0], domain[1], config.stub_capacity);
      }
      // Primary uplink from the domain's first node.
      topo.AddDuplexLink(domain[0],
                         local.transit[static_cast<std::size_t>(t)],
                         config.stub_capacity);
      // Optional multi-homing from the last node to a different transit.
      if (rng.Bernoulli(config.multihome_prob)) {
        NodeId other = local.transit[rng.Index(local.transit.size())];
        if (other == local.transit[static_cast<std::size_t>(t)]) {
          other = local.transit[static_cast<std::size_t>(
              (t + 1) % config.transit_nodes)];
        }
        topo.AddDuplexLink(domain.back(), other, config.stub_capacity);
      }
      local.stubs.push_back(std::move(domain));
    }
  }

  DRTP_CHECK(topo.IsConnected());
  if (layout != nullptr) *layout = std::move(local);
  return topo;
}

}  // namespace drtp::net
