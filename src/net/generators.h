// Topology generators.
//
// The paper evaluates on 60-node Waxman graphs with average node degree 3
// and 4 (§6.1, citing Waxman 1988); the grid generator rebuilds the 3x3
// mesh of Fig. 1; ring/star are pathological shapes used by tests.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "net/topology.h"

namespace drtp::net {

/// Parameters for the Waxman random-graph model. An edge u-v is accepted
/// with probability beta * exp(-d(u,v) / (alpha * L)), d Euclidean, L the
/// diameter of the node set. avg_degree picks the number of duplex edges
/// (nodes * avg_degree / 2); connectivity is guaranteed by seeding with a
/// Waxman-weighted random spanning tree.
struct WaxmanConfig {
  int nodes = 60;
  double avg_degree = 3.0;
  double alpha = 0.25;  // locality: smaller favours short edges
  double beta = 0.8;    // density scale
  /// Minimum node degree. 2 (the default) guarantees every node has at
  /// least one link-disjoint detour, matching the paper's premise that a
  /// backup route exists; 1 allows single-homed stubs.
  int min_degree = 2;
  Bandwidth link_capacity = Mbps(30);
  /// When > 0, every duplex pair is tagged with one of this many shared-risk
  /// link groups by geographic clustering: group centers are drawn uniformly
  /// in the unit square and each pair joins the center nearest its midpoint
  /// (conduits in the same area share fate). 0 leaves links untagged.
  int srlg_groups = 0;
  std::uint64_t seed = 1;
};

/// Builds a connected Waxman graph per the config. All links are duplex
/// pairs of identical capacity.
Topology MakeWaxman(const WaxmanConfig& config);

/// rows x cols grid of duplex links (Fig. 1 uses 3x3).
Topology MakeGrid(int rows, int cols, Bandwidth link_capacity);

/// Cycle of n >= 3 nodes; exactly two disjoint paths between any pair.
Topology MakeRing(int n, Bandwidth link_capacity);

/// Hub-and-spoke with n >= 2 leaves; no disjoint backup exists, the
/// worst case for DRTP.
Topology MakeStar(int leaves, Bandwidth link_capacity);

/// Two nodes joined by `paths` >= 1 parallel two-hop routes through
/// distinct relay nodes; the simplest shape with tunable path diversity.
Topology MakeParallelPaths(int paths, Bandwidth link_capacity);

}  // namespace drtp::net
