// Topology generators.
//
// The paper evaluates on 60-node Waxman graphs with average node degree 3
// and 4 (§6.1, citing Waxman 1988); the grid generator rebuilds the 3x3
// mesh of Fig. 1; ring/star are pathological shapes used by tests.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "net/topology.h"

namespace drtp::net {

/// Parameters for the Waxman random-graph model. An edge u-v is accepted
/// with probability beta * exp(-d(u,v) / (alpha * L)), d Euclidean, L the
/// diameter of the node set. avg_degree picks the number of duplex edges
/// (nodes * avg_degree / 2); connectivity is guaranteed by seeding with a
/// Waxman-weighted random spanning tree.
struct WaxmanConfig {
  int nodes = 60;
  double avg_degree = 3.0;
  double alpha = 0.25;  // locality: smaller favours short edges
  double beta = 0.8;    // density scale
  /// Minimum node degree. 2 (the default) guarantees every node has at
  /// least one link-disjoint detour, matching the paper's premise that a
  /// backup route exists; 1 allows single-homed stubs.
  int min_degree = 2;
  Bandwidth link_capacity = Mbps(30);
  /// When > 0, every duplex pair is tagged with one of this many shared-risk
  /// link groups by geographic clustering: group centers are drawn uniformly
  /// in the unit square and each pair joins the center nearest its midpoint
  /// (conduits in the same area share fate). 0 leaves links untagged.
  int srlg_groups = 0;
  std::uint64_t seed = 1;
};

/// Builds a connected Waxman graph per the config. All links are duplex
/// pairs of identical capacity.
Topology MakeWaxman(const WaxmanConfig& config);

/// rows x cols grid of duplex links (Fig. 1 uses 3x3).
Topology MakeGrid(int rows, int cols, Bandwidth link_capacity);

/// Cycle of n >= 3 nodes; exactly two disjoint paths between any pair.
Topology MakeRing(int n, Bandwidth link_capacity);

/// Hub-and-spoke with n >= 2 leaves; no disjoint backup exists, the
/// worst case for DRTP.
Topology MakeStar(int leaves, Bandwidth link_capacity);

/// Two nodes joined by `paths` >= 1 parallel two-hop routes through
/// distinct relay nodes; the simplest shape with tunable path diversity.
Topology MakeParallelPaths(int paths, Bandwidth link_capacity);

/// Parameters for the hierarchical ISP model: a chorded backbone ring,
/// dual-homed PoPs, and metro access rings — the three-tier transit-stub
/// shape of real carrier maps. Unlike Waxman (O(N^2) pair scans, flat
/// degree distribution) it builds in O(N) and keeps the sparse,
/// tiered structure ISP-scale graphs actually have, so it is the
/// generator of choice for the 1k-10k-node engine benchmarks.
struct HierConfig {
  /// Backbone routers on the core ring (>= 3).
  int backbone = 10;
  /// PoPs homed per backbone router (>= 0). Each PoP is dual-homed: one
  /// uplink to its backbone router, one to that router's ring successor,
  /// so no single backbone failure strands a PoP.
  int pops_per_backbone = 3;
  /// Metro/access nodes per PoP (>= 0), joined in a ring that closes
  /// through the PoP so every access node keeps two disjoint uplink
  /// paths (min degree 2, matching the paper's backup-exists premise).
  int metro_per_pop = 32;
  /// Extra backbone chords as a fraction of the ring size:
  /// round(chord_frac * backbone) random non-adjacent chords are added,
  /// standing in for long-haul express waves.
  double chord_frac = 0.25;
  Bandwidth backbone_capacity = Mbps(120);
  Bandwidth pop_capacity = Mbps(60);
  Bandwidth metro_capacity = Mbps(30);
  /// Same geographic SRLG clustering as WaxmanConfig::srlg_groups; 0
  /// leaves links untagged.
  int srlg_groups = 0;
  std::uint64_t seed = 1;
};

/// Builds the three-tier hierarchy. Node ids are dense by tier: backbone
/// first, then PoPs, then metro nodes. Deterministic for a given config;
/// randomness only selects backbone chords and SRLG centers. Every node
/// has degree >= 2 and the result is connected.
Topology MakeHierarchical(const HierConfig& config);

/// Tags every duplex pair with one of `groups` shared-risk groups by
/// geographic clustering: centers are drawn uniformly in the unit square
/// and each pair joins the center nearest its midpoint (conduits in the
/// same area share fate). Consumes exactly 2 * groups uniform draws from
/// `rng`, nothing else — callers relying on byte-stable generation with
/// srlg_groups == 0 can order this after all other randomness.
void AssignGeoSrlgs(Topology& topo, int groups, Rng& rng);

}  // namespace drtp::net
