// Shared admission path: one connection request, start to finish.
//
// Both the offline simulator (sim::RunScenario) and the online daemon
// (svc::Engine) admit connections; replay equivalence between them —
// feeding the daemon's request log through the simulator must reproduce
// the same ledger / APLV state — holds only if both run the *same* code:
// route discovery, all-or-nothing primary establishment, the
// vacuous-backup shun, backup registration, and optional multi-backup
// protection. This is that code. Callers layer their own bookkeeping
// (sim metrics, daemon RPC responses) on the returned outcome.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.h"
#include "drtp/network.h"
#include "drtp/scheme.h"
#include "lsdb/link_state_db.h"
#include "routing/path.h"

namespace drtp::core {

struct AdmitOptions {
  /// Backups to register per connection; 0 admits unprotected even when
  /// the scheme wants a backup. Values > 1 add pairwise-disjoint extras
  /// via ProtectConnection.
  int num_backups = 1;
};

/// What one admission attempt did. Route-discovery cost is filled whether
/// or not the request was admitted; the route fields only on admission.
struct AdmitOutcome {
  bool admitted = false;

  /// The established primary (present iff admitted).
  std::optional<routing::Path> primary;
  /// The first backup actually registered, after the vacuous-coverage
  /// shun; absent when the connection runs unprotected.
  std::optional<routing::Path> backup;

  /// Hops RegisterBackup left overbooked for the first backup.
  int overbooked_hops = 0;
  /// Disjoint backups registered beyond the first (num_backups > 1).
  int extra_backups = 0;

  /// Control-plane cost of route discovery (from RouteSelection).
  std::int64_t control_messages = 0;
  std::int64_t control_bytes = 0;

  bool has_backup() const { return backup.has_value(); }
};

/// Runs the full admission sequence for request `id` (src -> dst, bw):
/// scheme.SelectRoutes against the advertised `db`, EstablishConnection
/// (all-or-nothing; a down link or insufficient free bandwidth blocks),
/// the vacuous-backup shun (a backup overlapping every primary link
/// protects nothing and is dropped rather than booked), RegisterBackup,
/// and — for num_backups > 1 — ProtectConnection. Does NOT publish to
/// `db`; the caller owns advertisement cadence (the simulator publishes
/// per event in instant mode, the daemon once per batch).
AdmitOutcome AdmitConnection(RoutingScheme& scheme, DrtpNetwork& net,
                             const lsdb::LinkStateDb& db, ConnId id,
                             NodeId src, NodeId dst, Bandwidth bw, Time now,
                             const AdmitOptions& options = {});

}  // namespace drtp::core
