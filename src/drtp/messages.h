// DRTP control messages (§2.2).
//
// The backup-path register/release packets carry the LSET of the
// corresponding *primary* route so that each router along the backup can
// maintain the APLV of its own links without storing any global state —
// the paper's key scalability device.
#pragma once

#include "common/types.h"
#include "routing/path.h"

namespace drtp::core {

/// Sent hop-by-hop along a newly selected backup route (step 3 of
/// connection management, §2.2).
struct BackupRegisterPacket {
  ConnId conn_id = kInvalidConn;
  Bandwidth bw = 0;
  /// LSET of the corresponding primary route.
  routing::LinkSet primary_lset;
};

/// Sent hop-by-hop when a backup is torn down (connection termination,
/// rejection upstream, or promotion to primary).
struct BackupReleasePacket {
  ConnId conn_id = kInvalidConn;
  Bandwidth bw = 0;
  routing::LinkSet primary_lset;
};

/// Approximate wire sizes, used by the control-overhead accounting.
/// Header (ids, bandwidth, flags) + 4 bytes per LSET entry.
inline int PacketBytes(const BackupRegisterPacket& p) {
  return 16 + 4 * static_cast<int>(p.primary_lset.size());
}
inline int PacketBytes(const BackupReleasePacket& p) {
  return 16 + 4 * static_cast<int>(p.primary_lset.size());
}

}  // namespace drtp::core
