#include "drtp/baselines.h"

#include <vector>

#include "routing/dijkstra.h"

namespace drtp::core {

RouteSelection NoBackup::SelectRoutes(const DrtpNetwork& net,
                                      const lsdb::LinkStateDb& db, NodeId src,
                                      NodeId dst, Bandwidth bw) {
  RouteSelection sel;
  sel.primary = SelectPrimaryMinHop(net.topology(), db, src, dst, bw);
  return sel;
}

RouteSelection RandomBackup::SelectRoutes(const DrtpNetwork& net,
                                          const lsdb::LinkStateDb& db,
                                          NodeId src, NodeId dst,
                                          Bandwidth bw) {
  RouteSelection sel;
  sel.primary = SelectPrimaryMinHop(net.topology(), db, src, dst, bw);
  if (!sel.primary.has_value()) return sel;
  const routing::LinkSet primary_lset = sel.primary->ToLinkSet();

  // One random cost per link, drawn per request; the disqualifier penalty
  // matches Eq. 4/5 so only the conflict knowledge differs.
  std::vector<double> noise(
      static_cast<std::size_t>(net.topology().num_links()));
  for (auto& x : noise) x = rng_.UniformReal(0.0, 1.0);

  sel.backup = routing::CheapestPath(
      net.topology(), src, dst, [&](LinkId l) {
        const lsdb::LinkRecord& rec = db.record(l);
        if (!rec.up) return routing::kInfiniteCost;
        double cost = noise[static_cast<std::size_t>(l)] + kEpsilon;
        if (routing::SetContains(primary_lset, l) ||
            rec.available_for_backup < bw) {
          cost += kPenaltyQ;
        }
        return cost;
      });
  return sel;
}

RouteSelection ShortestDisjointBackup::SelectRoutes(
    const DrtpNetwork& net, const lsdb::LinkStateDb& db, NodeId src,
    NodeId dst, Bandwidth bw) {
  RouteSelection sel;
  sel.primary = SelectPrimaryMinHop(net.topology(), db, src, dst, bw);
  if (!sel.primary.has_value()) return sel;
  const routing::LinkSet primary_lset = sel.primary->ToLinkSet();

  sel.backup = routing::CheapestPath(
      net.topology(), src, dst, [&](LinkId l) {
        const lsdb::LinkRecord& rec = db.record(l);
        if (!rec.up) return routing::kInfiniteCost;
        double cost = 1.0;
        if (routing::SetContains(primary_lset, l) ||
            rec.available_for_backup < bw) {
          cost += kPenaltyQ;
        }
        return cost;
      });
  return sel;
}

}  // namespace drtp::core
