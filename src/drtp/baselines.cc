#include "drtp/baselines.h"

#include <vector>

#include "routing/dijkstra.h"

namespace drtp::core {
namespace {

// Both baselines price a link as base cost plus the Eq. 4/5 disqualifier
// penalty for primary/avoided links and bandwidth-short links; only the
// base cost (1.0 vs random noise) distinguishes them.
std::optional<routing::Path> CheapestBackup(
    const net::Topology& topo, const lsdb::LinkStateDb& db,
    const routing::LinkSet& primary, NodeId src, NodeId dst, Bandwidth bw,
    std::span<const routing::Path> avoid, const std::vector<double>* noise) {
  return routing::CheapestPath(topo, src, dst, [&](LinkId l) {
    const lsdb::LinkRecord& rec = db.record(l);
    if (!rec.up) return routing::kInfiniteCost;
    double cost =
        noise != nullptr ? (*noise)[static_cast<std::size_t>(l)] + kEpsilon
                         : 1.0;
    bool shunned = routing::SetContains(primary, l);
    for (const routing::Path& p : avoid) shunned = shunned || p.Contains(l);
    if (shunned || rec.available_for_backup < bw) cost += kPenaltyQ;
    return cost;
  });
}

}  // namespace

RouteSelection NoBackup::SelectRoutes(const DrtpNetwork& net,
                                      const lsdb::LinkStateDb& db, NodeId src,
                                      NodeId dst, Bandwidth bw) {
  RouteSelection sel;
  sel.primary = SelectPrimaryMinHop(net.topology(), db, src, dst, bw);
  return sel;
}

RouteSelection RandomBackup::SelectRoutes(const DrtpNetwork& net,
                                          const lsdb::LinkStateDb& db,
                                          NodeId src, NodeId dst,
                                          Bandwidth bw) {
  RouteSelection sel;
  sel.primary = SelectPrimaryMinHop(net.topology(), db, src, dst, bw);
  if (!sel.primary.has_value()) return sel;
  const routing::LinkSet primary_lset = sel.primary->ToLinkSet();

  // One random cost per link, drawn per request; the disqualifier penalty
  // matches Eq. 4/5 so only the conflict knowledge differs.
  std::vector<double> noise(
      static_cast<std::size_t>(net.topology().num_links()));
  for (auto& x : noise) x = rng_.UniformReal(0.0, 1.0);
  sel.backup = CheapestBackup(net.topology(), db, primary_lset, src, dst, bw,
                              {}, &noise);
  return sel;
}

std::optional<routing::Path> RandomBackup::SelectBackupFor(
    const DrtpNetwork& net, const lsdb::LinkStateDb& db,
    const routing::Path& primary, Bandwidth bw,
    std::span<const routing::Path> avoid) {
  std::vector<double> noise(
      static_cast<std::size_t>(net.topology().num_links()));
  for (auto& x : noise) x = rng_.UniformReal(0.0, 1.0);
  return CheapestBackup(net.topology(), db, primary.ToLinkSet(),
                        primary.src(), primary.dst(), bw, avoid, &noise);
}

RouteSelection ShortestDisjointBackup::SelectRoutes(
    const DrtpNetwork& net, const lsdb::LinkStateDb& db, NodeId src,
    NodeId dst, Bandwidth bw) {
  RouteSelection sel;
  sel.primary = SelectPrimaryMinHop(net.topology(), db, src, dst, bw);
  if (!sel.primary.has_value()) return sel;
  const routing::LinkSet primary_lset = sel.primary->ToLinkSet();

  sel.backup = CheapestBackup(net.topology(), db, primary_lset, src, dst, bw,
                              {}, nullptr);
  return sel;
}

std::optional<routing::Path> ShortestDisjointBackup::SelectBackupFor(
    const DrtpNetwork& net, const lsdb::LinkStateDb& db,
    const routing::Path& primary, Bandwidth bw,
    std::span<const routing::Path> avoid) {
  return CheapestBackup(net.topology(), db, primary.ToLinkSet(),
                        primary.src(), primary.dst(), bw, avoid, nullptr);
}

}  // namespace drtp::core
