#include "drtp/network.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace drtp::core {

namespace {

void SortedInsert(std::vector<ConnId>& v, ConnId id) {
  auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it == v.end() || *it != id) v.insert(it, id);
}

void SortedErase(std::vector<ConnId>& v, ConnId id) {
  auto it = std::lower_bound(v.begin(), v.end(), id);
  DRTP_DCHECK(it != v.end() && *it == id);
  if (it != v.end() && *it == id) v.erase(it);
}

}  // namespace

DrtpNetwork::DrtpNetwork(net::Topology topo, NetworkConfig config)
    : topo_(std::move(topo)),
      config_(config),
      ledger_(topo_),
      link_up_(static_cast<std::size_t>(topo_.num_links()), 1),
      primary_conns_(static_cast<std::size_t>(topo_.num_links())),
      backup_conns_(static_cast<std::size_t>(topo_.num_links())),
      dirty_flag_(static_cast<std::size_t>(topo_.num_links()), 0) {
  managers_.reserve(static_cast<std::size_t>(topo_.num_nodes()));
  for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
    managers_.emplace_back(n, topo_, ledger_, config_.spare_mode);
  }
  dirty_links_.reserve(static_cast<std::size_t>(topo_.num_links()));
}

void DrtpNetwork::MarkDirty(LinkId l) {
  auto& flag = dirty_flag_[static_cast<std::size_t>(l)];
  if (!flag) {
    flag = 1;
    dirty_links_.push_back(l);
  }
}

bool DrtpNetwork::IsLinkUp(LinkId l) const {
  DRTP_CHECK(l >= 0 && l < topo_.num_links());
  return link_up_[static_cast<std::size_t>(l)] != 0;
}

void DrtpNetwork::MarkLinkUpDown(LinkId l, bool up) {
  auto& state = link_up_[static_cast<std::size_t>(l)];
  if ((state != 0) == up) return;
  state = up ? 1 : 0;
  auto it = std::lower_bound(down_links_.begin(), down_links_.end(), l);
  if (up) {
    down_links_.erase(it);
  } else {
    down_links_.insert(it, l);
  }
  MarkDirty(l);
}

void DrtpNetwork::SetLinkDown(LinkId l) {
  DRTP_CHECK(l >= 0 && l < topo_.num_links());
  MarkLinkUpDown(l, false);
  if (config_.duplex_failures) {
    const LinkId rev = topo_.link(l).reverse;
    if (rev != kInvalidLink) MarkLinkUpDown(rev, false);
  }
}

void DrtpNetwork::SetLinkUp(LinkId l) {
  DRTP_CHECK(l >= 0 && l < topo_.num_links());
  MarkLinkUpDown(l, true);
  if (config_.duplex_failures) {
    const LinkId rev = topo_.link(l).reverse;
    if (rev != kInvalidLink) MarkLinkUpDown(rev, true);
  }
}

void DrtpNetwork::IndexPrimary(ConnId id, const routing::LinkSet& lset) {
  for (LinkId l : lset) {
    SortedInsert(primary_conns_[static_cast<std::size_t>(l)], id);
    MarkDirty(l);
  }
}

void DrtpNetwork::UnindexPrimary(ConnId id, const routing::LinkSet& lset) {
  for (LinkId l : lset) {
    SortedErase(primary_conns_[static_cast<std::size_t>(l)], id);
    MarkDirty(l);
  }
}

bool DrtpNetwork::EstablishConnection(ConnId id, const routing::Path& primary,
                                      Bandwidth bw, Time now) {
  DRTP_CHECK(bw > 0);
  DRTP_CHECK_MSG(!conns_.contains(id), "duplicate connection id " << id);
  // All-or-nothing reservation with rollback.
  std::vector<LinkId> reserved;
  reserved.reserve(primary.links().size());
  for (LinkId l : primary.links()) {
    if (!IsLinkUp(l) || !ledger_.ReservePrime(l, bw)) {
      for (LinkId r : reserved) ledger_.ReleasePrime(r, bw);
      return false;
    }
    reserved.push_back(l);
  }
  auto it = conns_
                .emplace(id, DrConnection{.id = id,
                                          .src = primary.src(),
                                          .dst = primary.dst(),
                                          .bw = bw,
                                          .primary = primary,
                                          .primary_lset = primary.ToLinkSet(),
                                          .backups = {},
                                          .established_at = now,
                                          .failovers = 0})
                .first;
  IndexPrimary(id, it->second.primary_lset);
  return true;
}

int DrtpNetwork::RegisterBackup(ConnId id, const routing::Path& backup) {
  auto it = conns_.find(id);
  DRTP_CHECK_MSG(it != conns_.end(), "no connection " << id);
  DrConnection& conn = it->second;
  DRTP_CHECK(backup.src() == conn.src && backup.dst() == conn.dst);
  for (const routing::Path& existing : conn.backups) {
    DRTP_CHECK_MSG(existing.LinkDisjoint(backup),
                   "backups of connection " << id << " must be disjoint");
  }

  const BackupRegisterPacket packet{
      .conn_id = id, .bw = conn.bw, .primary_lset = conn.primary_lset};
  int overbooked_hops = 0;
  for (LinkId l : backup.links()) {
    const NodeId router = topo_.link(l).src;
    if (!manager(router).RegisterBackupHop(l, packet)) {
      ++overbooked_hops;
      overbooked_.insert(l);
    }
    SortedInsert(backup_conns_[static_cast<std::size_t>(l)], id);
    MarkDirty(l);
  }
  conn.backups.push_back(backup);
  return overbooked_hops;
}

void DrtpNetwork::ReleaseBackupAt(ConnId id, std::size_t index) {
  auto it = conns_.find(id);
  DRTP_CHECK_MSG(it != conns_.end(), "no connection " << id);
  DrConnection& conn = it->second;
  DRTP_CHECK_MSG(index < conn.backups.size(),
                 "connection " << id << " has no backup #" << index);
  const BackupReleasePacket packet{
      .conn_id = id, .bw = conn.bw, .primary_lset = conn.primary_lset};
  for (LinkId l : conn.backups[index].links()) {
    manager(topo_.link(l).src).ReleaseBackupHop(l, packet);
    // A connection's backups are pairwise disjoint, so no surviving backup
    // of `id` can still hold this link.
    SortedErase(backup_conns_[static_cast<std::size_t>(l)], id);
    MarkDirty(l);
  }
  conn.backups.erase(conn.backups.begin() +
                     static_cast<std::ptrdiff_t>(index));
  ReconcileOverbooked();
}

void DrtpNetwork::ReleaseAllBackups(ConnId id) {
  auto it = conns_.find(id);
  DRTP_CHECK_MSG(it != conns_.end(), "no connection " << id);
  while (!it->second.backups.empty()) {
    ReleaseBackupAt(id, it->second.backups.size() - 1);
  }
}

void DrtpNetwork::ReleaseConnection(ConnId id) {
  auto it = conns_.find(id);
  DRTP_CHECK_MSG(it != conns_.end(), "no connection " << id);
  ReleaseAllBackups(id);
  for (LinkId l : it->second.primary.links()) {
    ledger_.ReleasePrime(l, it->second.bw);
  }
  UnindexPrimary(id, it->second.primary_lset);
  conns_.erase(it);
  // §5: resources of a released primary are offered to spare pools that
  // could not previously reach their targets.
  ReconcileOverbooked();
}

bool DrtpNetwork::ActivateBackup(ConnId id, std::size_t index, Time now) {
  auto it = conns_.find(id);
  DRTP_CHECK_MSG(it != conns_.end(), "no connection " << id);
  DrConnection& conn = it->second;
  DRTP_CHECK_MSG(index < conn.backups.size(),
                 "connection " << id << " has no backup #" << index
                               << " to activate");
  const routing::Path promoted = conn.backups[index];

  // Deregister every backup first: the registrations carried the *old*
  // primary's LSET and would go stale the moment the promotion lands; the
  // promoted route's own spare demand disappearing typically frees exactly
  // the bandwidth the promotion is about to claim. Step 4 (resource
  // reconfiguration) re-establishes protection afterwards.
  ReleaseAllBackups(id);
  for (LinkId l : conn.primary.links()) ledger_.ReleasePrime(l, conn.bw);
  UnindexPrimary(id, conn.primary_lset);

  // Reserve along the promoted route, raiding spare pools if needed.
  std::vector<LinkId> reserved;
  bool ok = true;
  for (LinkId l : promoted.links()) {
    if (!IsLinkUp(l) || !ledger_.ReservePrimeForced(l, conn.bw)) {
      ok = false;
      break;
    }
    reserved.push_back(l);
    MarkDirty(l);
    if (manager(topo_.link(l).src).IsOverbooked(l)) overbooked_.insert(l);
  }
  if (!ok) {
    for (LinkId r : reserved) ledger_.ReleasePrime(r, conn.bw);
    conns_.erase(it);  // unrecoverable: resources already released
    ReconcileOverbooked();
    return false;
  }
  conn.primary = promoted;
  conn.primary_lset = promoted.ToLinkSet();
  IndexPrimary(id, conn.primary_lset);
  conn.established_at = now;
  ++conn.failovers;
  ReconcileOverbooked();
  return true;
}

const DrConnection* DrtpNetwork::Find(ConnId id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

DrConnectionManager& DrtpNetwork::manager(NodeId n) {
  DRTP_CHECK(n >= 0 && n < topo_.num_nodes());
  // Handing out a mutable manager may change any of its out-links' APLVs
  // or spare pools; conservatively treat them all as touched.
  for (LinkId l : topo_.out_links(n)) MarkDirty(l);
  return managers_[static_cast<std::size_t>(n)];
}

const DrConnectionManager& DrtpNetwork::manager(NodeId n) const {
  DRTP_CHECK(n >= 0 && n < topo_.num_nodes());
  return managers_[static_cast<std::size_t>(n)];
}

const lsdb::Aplv& DrtpNetwork::aplv(LinkId l) const {
  return manager(topo_.link(l).src).aplv(l);
}

std::vector<ConnId> DrtpNetwork::ConnsWithPrimaryOn(LinkId l) const {
  DRTP_CHECK(l >= 0 && l < topo_.num_links());
  return primary_conns_[static_cast<std::size_t>(l)];
}

std::vector<ConnId> DrtpNetwork::ConnsWithBackupOn(LinkId l) const {
  DRTP_CHECK(l >= 0 && l < topo_.num_links());
  return backup_conns_[static_cast<std::size_t>(l)];
}

std::span<const ConnId> DrtpNetwork::PrimaryConnsOn(LinkId l) const {
  DRTP_DCHECK(l >= 0 && l < topo_.num_links());
  return primary_conns_[static_cast<std::size_t>(l)];
}

std::span<const ConnId> DrtpNetwork::BackupConnsOn(LinkId l) const {
  DRTP_DCHECK(l >= 0 && l < topo_.num_links());
  return backup_conns_[static_cast<std::size_t>(l)];
}

std::vector<LinkId> DrtpNetwork::OverbookedLinks() const {
  std::vector<LinkId> out;
  for (LinkId l : overbooked_) out.push_back(l);
  return out;
}

void DrtpNetwork::WriteRecordTo(lsdb::LinkRecord& rec, LinkId l) const {
  const core::ManagedLink& ml = manager(topo_.link(l).src).managed(l);
  rec.aplv_l1 = ml.aplv.L1();
  rec.cv = ml.aplv.conflict_vector();
  // Unconditional (even on untagged topologies, where it is an empty
  // copy): the incremental-publish debug compare relies on every field
  // being written.
  rec.srlg_aplv = ml.srlg_aplv;
  const bool up = IsLinkUp(l);
  rec.up = up;
  if (up) {
    rec.available_for_backup = ledger_.spare(l) + ledger_.free(l);
    rec.free_for_primary = ledger_.free(l);
  } else {
    rec.available_for_backup = 0;
    rec.free_for_primary = 0;
  }
}

void DrtpNetwork::PublishTo(lsdb::LinkStateDb& db, Time now) const {
  DRTP_CHECK(db.num_links() == topo_.num_links());
  const bool incremental =
      db.publisher() == this && db.publish_seq() == publish_seq_;
  if (incremental) {
    // Counter only: at ~tens of ns per call a scoped timer would cost
    // more than the kernel it measures (see docs/OBSERVABILITY.md).
    static const obs::Counter publishes =
        obs::GetCounter("drtp.lsdb.publish_incremental");
    publishes.Add();
    for (LinkId l : dirty_links_) WriteRecordTo(db.record(l), l);
#ifndef NDEBUG
    // The incremental path must be indistinguishable from a full rewrite.
    for (LinkId l = 0; l < topo_.num_links(); ++l) {
      lsdb::LinkRecord full;
      WriteRecordTo(full, l);
      DRTP_CHECK_MSG(db.record(l) == full,
                     "incremental publish diverged on link " << l);
    }
#endif
  } else {
    for (LinkId l = 0; l < topo_.num_links(); ++l) {
      WriteRecordTo(db.record(l), l);
    }
  }
  db.set_last_refresh(now);
  ++publish_seq_;
  db.SetPublishStamp(this, publish_seq_);
  for (LinkId l : dirty_links_) dirty_flag_[static_cast<std::size_t>(l)] = 0;
  dirty_links_.clear();
}

void DrtpNetwork::PublishFullTo(lsdb::LinkStateDb& db, Time now) const {
  // Sampled 1-in-8: a ~2.5µs kernel where full-span clock reads would eat
  // a few percent — the counter still records every publication.
  DRTP_OBS_SPAN_SAMPLED("drtp.kernel.publish_full", 3);
  static const obs::Counter publishes =
      obs::GetCounter("drtp.lsdb.publish_full");
  publishes.Add();
  DRTP_CHECK(db.num_links() == topo_.num_links());
  for (LinkId l = 0; l < topo_.num_links(); ++l) {
    WriteRecordTo(db.record(l), l);
  }
  db.set_last_refresh(now);
  ++publish_seq_;
  db.SetPublishStamp(this, publish_seq_);
  for (LinkId l : dirty_links_) dirty_flag_[static_cast<std::size_t>(l)] = 0;
  dirty_links_.clear();
}

void DrtpNetwork::ReconcileOverbooked() {
  for (auto it = overbooked_.begin(); it != overbooked_.end();) {
    const LinkId l = *it;
    MarkDirty(l);  // ReconcileSpare may grow or shrink the pool
    if (manager(topo_.link(l).src).ReconcileSpare(l)) {
      it = overbooked_.erase(it);
    } else {
      ++it;
    }
  }
}

void DrtpNetwork::CheckConsistency() const {
  ledger_.CheckInvariants();
  // Rebuild expected APLVs from the connection table.
  std::vector<lsdb::Aplv> expected(
      static_cast<std::size_t>(topo_.num_links()),
      lsdb::Aplv(topo_.num_links()));
  std::vector<DemandVector> expected_demand(
      static_cast<std::size_t>(topo_.num_links()),
      DemandVector(topo_.num_links()));
  std::vector<lsdb::SrlgVector> expected_srlg(
      static_cast<std::size_t>(topo_.num_links()),
      topo_.has_srlgs()
          ? lsdb::SrlgVector(topo_.num_srlgs(), topo_.num_links())
          : lsdb::SrlgVector());
  const auto srlg_of = [&](LinkId j) { return topo_.srlg(j); };
  for (const auto& [id, conn] : conns_) {
    for (const routing::Path& backup : conn.backups) {
      for (LinkId l : backup.links()) {
        expected[static_cast<std::size_t>(l)].AddPrimaryLset(
            conn.primary_lset);
        expected_demand[static_cast<std::size_t>(l)].Add(conn.primary_lset,
                                                         conn.bw);
        if (topo_.has_srlgs()) {
          expected_srlg[static_cast<std::size_t>(l)].AddLset(
              conn.primary_lset, srlg_of);
        }
      }
    }
  }
  for (LinkId l = 0; l < topo_.num_links(); ++l) {
    DRTP_CHECK_MSG(expected[static_cast<std::size_t>(l)] == aplv(l),
                   "APLV mismatch on link " << l);
    DRTP_CHECK_MSG(
        expected_srlg[static_cast<std::size_t>(l)] ==
            manager(topo_.link(l).src).managed(l).srlg_aplv,
        "per-SRLG aggregate mismatch on link " << l);
    const DemandVector& demand = manager(topo_.link(l).src).managed(l).demand;
    for (LinkId j = 0; j < topo_.num_links(); ++j) {
      DRTP_CHECK_MSG(
          expected_demand[static_cast<std::size_t>(l)].at(j) == demand.at(j),
          "demand mismatch on link " << l << " element " << j);
    }
    // Spare pools meet their targets unless the link is out of free
    // bandwidth (§5's best-effort growth), in which case the link must be
    // flagged overbooked.
    const auto& mgr = manager(topo_.link(l).src);
    const Bandwidth target = mgr.SpareTarget(l);
    const Bandwidth spare = ledger_.spare(l);
    DRTP_CHECK_MSG(spare <= target, "spare exceeds target on link " << l);
    if (spare < target) {
      DRTP_CHECK_MSG(ledger_.free(l) == 0,
                     "link " << l << " underprovisioned with free bandwidth");
      DRTP_CHECK_MSG(overbooked_.contains(l),
                     "link " << l << " overbooked but untracked");
    }
  }
  // Reverse indexes and the down-link mirror must match the tables they
  // are derived from.
  std::vector<std::vector<ConnId>> expect_primary(
      static_cast<std::size_t>(topo_.num_links()));
  std::vector<std::vector<ConnId>> expect_backup(
      static_cast<std::size_t>(topo_.num_links()));
  for (const auto& [id, conn] : conns_) {
    for (LinkId l : conn.primary_lset) {
      expect_primary[static_cast<std::size_t>(l)].push_back(id);
    }
    for (const routing::Path& backup : conn.backups) {
      for (LinkId l : backup.links()) {
        auto& v = expect_backup[static_cast<std::size_t>(l)];
        if (v.empty() || v.back() != id) v.push_back(id);
      }
    }
  }
  for (LinkId l = 0; l < topo_.num_links(); ++l) {
    DRTP_CHECK_MSG(
        expect_primary[static_cast<std::size_t>(l)] ==
            primary_conns_[static_cast<std::size_t>(l)],
        "primary reverse index mismatch on link " << l);
    auto& eb = expect_backup[static_cast<std::size_t>(l)];
    std::sort(eb.begin(), eb.end());
    eb.erase(std::unique(eb.begin(), eb.end()), eb.end());
    DRTP_CHECK_MSG(eb == backup_conns_[static_cast<std::size_t>(l)],
                   "backup reverse index mismatch on link " << l);
    const bool listed_down = std::binary_search(down_links_.begin(),
                                                down_links_.end(), l);
    DRTP_CHECK_MSG(listed_down == !IsLinkUp(l),
                   "down-link mirror mismatch on link " << l);
  }
}

}  // namespace drtp::core
