#include "drtp/network.h"

#include <algorithm>

#include "common/check.h"

namespace drtp::core {

DrtpNetwork::DrtpNetwork(net::Topology topo, NetworkConfig config)
    : topo_(std::move(topo)),
      config_(config),
      ledger_(topo_),
      link_up_(static_cast<std::size_t>(topo_.num_links()), 1) {
  managers_.reserve(static_cast<std::size_t>(topo_.num_nodes()));
  for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
    managers_.emplace_back(n, topo_, ledger_, config_.spare_mode);
  }
}

bool DrtpNetwork::IsLinkUp(LinkId l) const {
  DRTP_CHECK(l >= 0 && l < topo_.num_links());
  return link_up_[static_cast<std::size_t>(l)] != 0;
}

void DrtpNetwork::SetLinkDown(LinkId l) {
  DRTP_CHECK(l >= 0 && l < topo_.num_links());
  link_up_[static_cast<std::size_t>(l)] = 0;
  if (config_.duplex_failures) {
    const LinkId rev = topo_.link(l).reverse;
    if (rev != kInvalidLink) link_up_[static_cast<std::size_t>(rev)] = 0;
  }
}

void DrtpNetwork::SetLinkUp(LinkId l) {
  DRTP_CHECK(l >= 0 && l < topo_.num_links());
  link_up_[static_cast<std::size_t>(l)] = 1;
  if (config_.duplex_failures) {
    const LinkId rev = topo_.link(l).reverse;
    if (rev != kInvalidLink) link_up_[static_cast<std::size_t>(rev)] = 1;
  }
}

std::vector<LinkId> DrtpNetwork::DownLinks() const {
  std::vector<LinkId> down;
  for (LinkId l = 0; l < topo_.num_links(); ++l) {
    if (!IsLinkUp(l)) down.push_back(l);
  }
  return down;
}

bool DrtpNetwork::EstablishConnection(ConnId id, const routing::Path& primary,
                                      Bandwidth bw, Time now) {
  DRTP_CHECK(bw > 0);
  DRTP_CHECK_MSG(!conns_.contains(id), "duplicate connection id " << id);
  // All-or-nothing reservation with rollback.
  std::vector<LinkId> reserved;
  reserved.reserve(primary.links().size());
  for (LinkId l : primary.links()) {
    if (!IsLinkUp(l) || !ledger_.ReservePrime(l, bw)) {
      for (LinkId r : reserved) ledger_.ReleasePrime(r, bw);
      return false;
    }
    reserved.push_back(l);
  }
  conns_.emplace(id, DrConnection{.id = id,
                                  .src = primary.src(),
                                  .dst = primary.dst(),
                                  .bw = bw,
                                  .primary = primary,
                                  .primary_lset = primary.ToLinkSet(),
                                  .backups = {},
                                  .established_at = now,
                                  .failovers = 0});
  return true;
}

int DrtpNetwork::RegisterBackup(ConnId id, const routing::Path& backup) {
  auto it = conns_.find(id);
  DRTP_CHECK_MSG(it != conns_.end(), "no connection " << id);
  DrConnection& conn = it->second;
  DRTP_CHECK(backup.src() == conn.src && backup.dst() == conn.dst);
  for (const routing::Path& existing : conn.backups) {
    DRTP_CHECK_MSG(existing.LinkDisjoint(backup),
                   "backups of connection " << id << " must be disjoint");
  }

  const BackupRegisterPacket packet{
      .conn_id = id, .bw = conn.bw, .primary_lset = conn.primary_lset};
  int overbooked_hops = 0;
  for (LinkId l : backup.links()) {
    const NodeId router = topo_.link(l).src;
    if (!manager(router).RegisterBackupHop(l, packet)) {
      ++overbooked_hops;
      overbooked_.insert(l);
    }
  }
  conn.backups.push_back(backup);
  return overbooked_hops;
}

void DrtpNetwork::ReleaseBackupAt(ConnId id, std::size_t index) {
  auto it = conns_.find(id);
  DRTP_CHECK_MSG(it != conns_.end(), "no connection " << id);
  DrConnection& conn = it->second;
  DRTP_CHECK_MSG(index < conn.backups.size(),
                 "connection " << id << " has no backup #" << index);
  const BackupReleasePacket packet{
      .conn_id = id, .bw = conn.bw, .primary_lset = conn.primary_lset};
  for (LinkId l : conn.backups[index].links()) {
    manager(topo_.link(l).src).ReleaseBackupHop(l, packet);
  }
  conn.backups.erase(conn.backups.begin() +
                     static_cast<std::ptrdiff_t>(index));
  ReconcileOverbooked();
}

void DrtpNetwork::ReleaseAllBackups(ConnId id) {
  auto it = conns_.find(id);
  DRTP_CHECK_MSG(it != conns_.end(), "no connection " << id);
  while (!it->second.backups.empty()) {
    ReleaseBackupAt(id, it->second.backups.size() - 1);
  }
}

void DrtpNetwork::ReleaseConnection(ConnId id) {
  auto it = conns_.find(id);
  DRTP_CHECK_MSG(it != conns_.end(), "no connection " << id);
  ReleaseAllBackups(id);
  for (LinkId l : it->second.primary.links()) {
    ledger_.ReleasePrime(l, it->second.bw);
  }
  conns_.erase(it);
  // §5: resources of a released primary are offered to spare pools that
  // could not previously reach their targets.
  ReconcileOverbooked();
}

bool DrtpNetwork::ActivateBackup(ConnId id, std::size_t index, Time now) {
  auto it = conns_.find(id);
  DRTP_CHECK_MSG(it != conns_.end(), "no connection " << id);
  DrConnection& conn = it->second;
  DRTP_CHECK_MSG(index < conn.backups.size(),
                 "connection " << id << " has no backup #" << index
                               << " to activate");
  const routing::Path promoted = conn.backups[index];

  // Deregister every backup first: the registrations carried the *old*
  // primary's LSET and would go stale the moment the promotion lands; the
  // promoted route's own spare demand disappearing typically frees exactly
  // the bandwidth the promotion is about to claim. Step 4 (resource
  // reconfiguration) re-establishes protection afterwards.
  ReleaseAllBackups(id);
  for (LinkId l : conn.primary.links()) ledger_.ReleasePrime(l, conn.bw);

  // Reserve along the promoted route, raiding spare pools if needed.
  std::vector<LinkId> reserved;
  bool ok = true;
  for (LinkId l : promoted.links()) {
    if (!IsLinkUp(l) || !ledger_.ReservePrimeForced(l, conn.bw)) {
      ok = false;
      break;
    }
    reserved.push_back(l);
    if (manager(topo_.link(l).src).IsOverbooked(l)) overbooked_.insert(l);
  }
  if (!ok) {
    for (LinkId r : reserved) ledger_.ReleasePrime(r, conn.bw);
    conns_.erase(it);  // unrecoverable: resources already released
    ReconcileOverbooked();
    return false;
  }
  conn.primary = promoted;
  conn.primary_lset = promoted.ToLinkSet();
  conn.established_at = now;
  ++conn.failovers;
  ReconcileOverbooked();
  return true;
}

const DrConnection* DrtpNetwork::Find(ConnId id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

DrConnectionManager& DrtpNetwork::manager(NodeId n) {
  DRTP_CHECK(n >= 0 && n < topo_.num_nodes());
  return managers_[static_cast<std::size_t>(n)];
}

const DrConnectionManager& DrtpNetwork::manager(NodeId n) const {
  DRTP_CHECK(n >= 0 && n < topo_.num_nodes());
  return managers_[static_cast<std::size_t>(n)];
}

const lsdb::Aplv& DrtpNetwork::aplv(LinkId l) const {
  return manager(topo_.link(l).src).aplv(l);
}

std::vector<ConnId> DrtpNetwork::ConnsWithPrimaryOn(LinkId l) const {
  std::vector<ConnId> out;
  for (const auto& [id, conn] : conns_) {
    if (routing::SetContains(conn.primary_lset, l)) out.push_back(id);
  }
  return out;
}

std::vector<ConnId> DrtpNetwork::ConnsWithBackupOn(LinkId l) const {
  std::vector<ConnId> out;
  for (const auto& [id, conn] : conns_) {
    for (const routing::Path& backup : conn.backups) {
      if (backup.Contains(l)) {
        out.push_back(id);
        break;
      }
    }
  }
  return out;
}

std::vector<LinkId> DrtpNetwork::OverbookedLinks() const {
  std::vector<LinkId> out;
  for (LinkId l : overbooked_) out.push_back(l);
  return out;
}

void DrtpNetwork::PublishTo(lsdb::LinkStateDb& db, Time now) const {
  DRTP_CHECK(db.num_links() == topo_.num_links());
  for (LinkId l = 0; l < topo_.num_links(); ++l) {
    lsdb::LinkRecord& rec = db.record(l);
    const lsdb::Aplv& vec = aplv(l);
    rec.aplv_l1 = vec.L1();
    rec.cv = vec.ToConflictVector();
    rec.up = IsLinkUp(l);
    if (IsLinkUp(l)) {
      rec.available_for_backup = ledger_.spare(l) + ledger_.free(l);
      rec.free_for_primary = ledger_.free(l);
    } else {
      rec.available_for_backup = 0;
      rec.free_for_primary = 0;
    }
  }
  db.set_last_refresh(now);
}

void DrtpNetwork::ReconcileOverbooked() {
  for (auto it = overbooked_.begin(); it != overbooked_.end();) {
    const LinkId l = *it;
    if (manager(topo_.link(l).src).ReconcileSpare(l)) {
      it = overbooked_.erase(it);
    } else {
      ++it;
    }
  }
}

void DrtpNetwork::CheckConsistency() const {
  ledger_.CheckInvariants();
  // Rebuild expected APLVs from the connection table.
  std::vector<lsdb::Aplv> expected(
      static_cast<std::size_t>(topo_.num_links()),
      lsdb::Aplv(topo_.num_links()));
  std::vector<DemandVector> expected_demand(
      static_cast<std::size_t>(topo_.num_links()),
      DemandVector(topo_.num_links()));
  for (const auto& [id, conn] : conns_) {
    for (const routing::Path& backup : conn.backups) {
      for (LinkId l : backup.links()) {
        expected[static_cast<std::size_t>(l)].AddPrimaryLset(
            conn.primary_lset);
        expected_demand[static_cast<std::size_t>(l)].Add(conn.primary_lset,
                                                         conn.bw);
      }
    }
  }
  for (LinkId l = 0; l < topo_.num_links(); ++l) {
    DRTP_CHECK_MSG(expected[static_cast<std::size_t>(l)] == aplv(l),
                   "APLV mismatch on link " << l);
    const DemandVector& demand = manager(topo_.link(l).src).managed(l).demand;
    for (LinkId j = 0; j < topo_.num_links(); ++j) {
      DRTP_CHECK_MSG(
          expected_demand[static_cast<std::size_t>(l)].at(j) == demand.at(j),
          "demand mismatch on link " << l << " element " << j);
    }
    // Spare pools meet their targets unless the link is out of free
    // bandwidth (§5's best-effort growth), in which case the link must be
    // flagged overbooked.
    const auto& mgr = manager(topo_.link(l).src);
    const Bandwidth target = mgr.SpareTarget(l);
    const Bandwidth spare = ledger_.spare(l);
    DRTP_CHECK_MSG(spare <= target, "spare exceeds target on link " << l);
    if (spare < target) {
      DRTP_CHECK_MSG(ledger_.free(l) == 0,
                     "link " << l << " underprovisioned with free bandwidth");
      DRTP_CHECK_MSG(overbooked_.contains(l),
                     "link " << l << " overbooked but untracked");
    }
  }
}

}  // namespace drtp::core
