#include "drtp/srlg_schemes.h"

#include <utility>

#include "common/check.h"
#include "routing/srlg_disjoint.h"

namespace drtp::core {

SrlgLsr::SrlgLsr(bool deterministic, SrlgMode mode, int backup_hop_slack)
    : deterministic_(deterministic), mode_(mode), slack_(backup_hop_slack) {
  DRTP_CHECK_MSG(mode != SrlgMode::kOff,
                 "SrlgLsr with SrlgMode::kOff is just the base scheme — "
                 "construct Plsr/Dlsr instead");
}

std::string SrlgLsr::name() const {
  std::string n = deterministic_ ? "D-LSR" : "P-LSR";
  n += mode_ == SrlgMode::kHard ? "-SRLG-HARD" : "-SRLG-SOFT";
  return n;
}

RouteSelection SrlgLsr::SelectRoutes(const DrtpNetwork& net,
                                     const lsdb::LinkStateDb& db, NodeId src,
                                     NodeId dst, Bandwidth bw) {
  RouteSelection sel;
  sel.primary = SelectPrimaryMinHop(net.topology(), db, src, dst, bw);
  if (!sel.primary.has_value()) return sel;
  sel.backup = SelectBackupLsr(net.topology(), db, sel.primary->ToLinkSet(),
                               src, dst, bw, deterministic_, {},
                               MaxHops(*sel.primary), CvScoring::kAuto,
                               mode_);
  return sel;
}

std::optional<routing::Path> SrlgLsr::SelectBackupFor(
    const DrtpNetwork& net, const lsdb::LinkStateDb& db,
    const routing::Path& primary, Bandwidth bw,
    std::span<const routing::Path> avoid) {
  return SelectBackupLsr(net.topology(), db, primary.ToLinkSet(),
                         primary.src(), primary.dst(), bw, deterministic_,
                         avoid, MaxHops(primary), CvScoring::kAuto, mode_);
}

RouteSelection SrlgPairScheme::SelectRoutes(const DrtpNetwork& net,
                                            const lsdb::LinkStateDb& db,
                                            NodeId src, NodeId dst,
                                            Bandwidth bw) {
  RouteSelection sel;
  const net::Topology& topo = net.topology();
  auto pair = routing::FindSrlgDisjointPair(
      topo, src, dst,
      [&](LinkId l) {
        const lsdb::LinkRecord& rec = db.record(l);
        return rec.up && rec.free_for_primary >= bw ? 1.0
                                                    : routing::kInfiniteCost;
      },
      [&](LinkId l) {
        const lsdb::LinkRecord& rec = db.record(l);
        return rec.up && rec.available_for_backup >= bw
                   ? static_cast<double>(rec.aplv_l1) + kEpsilon
                   : routing::kInfiniteCost;
      });
  if (pair.found()) {
    sel.primary = std::move(pair.active);
    sel.backup = std::move(pair.protection);
    return sel;
  }
  // No jointly routable pair within the candidate budget: degrade to the
  // heuristics' two-step order (min-hop primary, hard-constrained backup
  // — possibly none, flowing into the usual unprotected/retry machinery).
  sel.primary = SelectPrimaryMinHop(topo, db, src, dst, bw);
  if (!sel.primary.has_value()) return sel;
  sel.backup = SelectBackupLsr(topo, db, sel.primary->ToLinkSet(), src, dst,
                               bw, /*deterministic=*/true, {}, /*max_hops=*/0,
                               CvScoring::kAuto, SrlgMode::kHard);
  return sel;
}

std::optional<routing::Path> SrlgPairScheme::SelectBackupFor(
    const DrtpNetwork& net, const lsdb::LinkStateDb& db,
    const routing::Path& primary, Bandwidth bw,
    std::span<const routing::Path> avoid) {
  // Re-protection keeps the existing primary, so the joint search does
  // not apply — one hard-constrained Dijkstra around it.
  return SelectBackupLsr(net.topology(), db, primary.ToLinkSet(),
                         primary.src(), primary.dst(), bw,
                         /*deterministic=*/true, avoid, /*max_hops=*/0,
                         CvScoring::kAuto, SrlgMode::kHard);
}

}  // namespace drtp::core
