// P-LSR: probabilistic avoidance of backup conflicts (§3.1).
//
// Every link advertises ||APLV||_1. Maximizing the probability of backup
// activation (Eq. 2) is equivalent to minimizing Σ ||APLV_i||_1 along the
// backup route (Eq. 3), so the backup is the Dijkstra minimum of
//   C_i = ||APLV_i||_1 + Q·[P uses L_i or bandwidth short] + ε   (Eq. 4).
#pragma once

#include "drtp/scheme.h"

namespace drtp::core {

class Plsr : public RoutingScheme {
 public:
  /// backup_hop_slack > 0 enforces a delay-style QoS bound on backups:
  /// at most primary_hops + slack links (§2's remark that a backup longer
  /// than the QoS allows cannot be used). 0 = unbounded.
  explicit Plsr(int backup_hop_slack = 0) : slack_(backup_hop_slack) {}

  std::string name() const override { return "P-LSR"; }

  RouteSelection SelectRoutes(const DrtpNetwork& net,
                              const lsdb::LinkStateDb& db, NodeId src,
                              NodeId dst, Bandwidth bw) override;

  std::optional<routing::Path> SelectBackupFor(
      const DrtpNetwork& net, const lsdb::LinkStateDb& db,
      const routing::Path& primary, Bandwidth bw,
      std::span<const routing::Path> avoid = {}) override;

 private:
  int MaxHops(const routing::Path& primary) const {
    return slack_ > 0 ? primary.hops() + slack_ : 0;
  }
  int slack_;
};

}  // namespace drtp::core
