#include "drtp/manager.h"

#include <algorithm>

#include "common/check.h"

namespace drtp::core {

Bandwidth DemandVector::at(LinkId j) const {
  DRTP_DCHECK(j >= 0 && j < num_links_);
  if (!wide()) return demand_[static_cast<std::size_t>(j)];
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), j);
  if (it == keys_.end() || *it != j) return 0;
  return vals_[static_cast<std::size_t>(it - keys_.begin())];
}

void DemandVector::Add(const routing::LinkSet& lset, Bandwidth bw) {
  DRTP_CHECK(bw > 0);
  for (LinkId j : lset) {
    DRTP_CHECK(j >= 0 && j < num_links_);
    Bandwidth d;
    if (!wide()) {
      d = demand_[static_cast<std::size_t>(j)] += bw;
    } else {
      const auto it = std::lower_bound(keys_.begin(), keys_.end(), j);
      if (it != keys_.end() && *it == j) {
        d = vals_[static_cast<std::size_t>(it - keys_.begin())] += bw;
      } else {
        vals_.insert(vals_.begin() + (it - keys_.begin()), bw);
        keys_.insert(it, j);
        d = bw;
      }
    }
    if (d > max_) max_ = d;
  }
}

void DemandVector::Remove(const routing::LinkSet& lset, Bandwidth bw) {
  bool touched_max = false;
  for (LinkId j : lset) {
    DRTP_CHECK(j >= 0 && j < num_links_);
    if (!wide()) {
      auto& d = demand_[static_cast<std::size_t>(j)];
      DRTP_CHECK_MSG(d >= bw, "removing more demand than present on " << j);
      if (d == max_) touched_max = true;
      d -= bw;
    } else {
      const auto it = std::lower_bound(keys_.begin(), keys_.end(), j);
      DRTP_CHECK_MSG(it != keys_.end() && *it == j &&
                         vals_[static_cast<std::size_t>(it - keys_.begin())] >=
                             bw,
                     "removing more demand than present on " << j);
      const auto idx = static_cast<std::size_t>(it - keys_.begin());
      if (vals_[idx] == max_) touched_max = true;
      vals_[idx] -= bw;
      if (vals_[idx] == 0) {  // canonical: no zero entries
        keys_.erase(it);
        vals_.erase(vals_.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    }
  }
  if (touched_max) {
    max_ = 0;
    if (!wide()) {
      for (Bandwidth d : demand_) max_ = std::max(max_, d);
    } else {
      for (Bandwidth d : vals_) max_ = std::max(max_, d);
    }
  }
}

DrConnectionManager::DrConnectionManager(NodeId node,
                                         const net::Topology& topo,
                                         net::BandwidthLedger& ledger,
                                         SpareMode mode)
    : node_(node), topo_(&topo), ledger_(ledger), mode_(mode) {
  DRTP_CHECK(node >= 0 && node < topo.num_nodes());
  for (LinkId l : topo.out_links(node)) {
    links_.emplace(
        l, ManagedLink{lsdb::Aplv(topo.num_links()),
                       DemandVector(topo.num_links()),
                       topo.has_srlgs()
                           ? lsdb::SrlgVector(topo.num_srlgs(),
                                              topo.num_links())
                           : lsdb::SrlgVector(),
                       0,
                       {}});
  }
}

const ManagedLink& DrConnectionManager::Owned(LinkId link) const {
  auto it = links_.find(link);
  DRTP_CHECK_MSG(it != links_.end(),
                 "link " << link << " is not an out-link of node " << node_);
  return it->second;
}

ManagedLink& DrConnectionManager::Owned(LinkId link) {
  auto it = links_.find(link);
  DRTP_CHECK_MSG(it != links_.end(),
                 "link " << link << " is not an out-link of node " << node_);
  return it->second;
}

Bandwidth DrConnectionManager::SpareTarget(LinkId link) const {
  const ManagedLink& ml = Owned(link);
  // kMultiplexed sizes for the worst single-link failure (the weighted
  // generalization of §5's max(APLV) × bw rule); kDedicated reserves for
  // every backup at once.
  return mode_ == SpareMode::kMultiplexed ? ml.demand.Max()
                                          : ml.total_backup_bw;
}

bool DrConnectionManager::RegisterBackupHop(LinkId link,
                                            const BackupRegisterPacket& p) {
  DRTP_CHECK(p.conn_id != kInvalidConn);
  DRTP_CHECK(p.bw > 0);
  DRTP_CHECK_MSG(!p.primary_lset.empty(),
                 "backup registered with empty primary LSET");
  ManagedLink& ml = Owned(link);
  DRTP_CHECK_MSG(!ml.backups.contains(p.conn_id),
                 "connection " << p.conn_id << " already has a backup on link "
                               << link);
  ml.backups.emplace(p.conn_id, std::make_pair(p.primary_lset, p.bw));
  ml.aplv.AddPrimaryLset(p.primary_lset);
  if (ml.srlg_aplv.num_srlgs() > 0) {
    ml.srlg_aplv.AddLset(p.primary_lset,
                         [&](LinkId j) { return topo_->srlg(j); });
  }
  ml.demand.Add(p.primary_lset, p.bw);
  ml.total_backup_bw += p.bw;
  return ReconcileSpare(link);
}

void DrConnectionManager::ReleaseBackupHop(LinkId link,
                                           const BackupReleasePacket& p) {
  ManagedLink& ml = Owned(link);
  auto it = ml.backups.find(p.conn_id);
  DRTP_CHECK_MSG(it != ml.backups.end(),
                 "releasing unknown backup " << p.conn_id << " on link "
                                             << link);
  DRTP_CHECK_MSG(it->second.first == p.primary_lset,
                 "release LSET mismatch for connection " << p.conn_id);
  DRTP_CHECK_MSG(it->second.second == p.bw,
                 "release bandwidth mismatch for connection " << p.conn_id);
  ml.aplv.RemovePrimaryLset(p.primary_lset);
  if (ml.srlg_aplv.num_srlgs() > 0) {
    ml.srlg_aplv.RemoveLset(p.primary_lset,
                            [&](LinkId j) { return topo_->srlg(j); });
  }
  ml.demand.Remove(p.primary_lset, p.bw);
  ml.total_backup_bw -= p.bw;
  ml.backups.erase(it);
  ReconcileSpare(link);
}

bool DrConnectionManager::ReconcileSpare(LinkId link) {
  const Bandwidth target = SpareTarget(link);
  const Bandwidth current = ledger_.spare(link);
  if (current < target) {
    ledger_.GrowSpare(link, target - current);
  } else if (current > target) {
    ledger_.ShrinkSpare(link, current - target);
  }
  return ledger_.spare(link) >= target;
}

bool DrConnectionManager::IsOverbooked(LinkId link) const {
  return ledger_.spare(link) < SpareTarget(link);
}

}  // namespace drtp::core
