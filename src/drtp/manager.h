// Per-router DR-connection manager (§2.2, §5).
//
// Each router runs one manager that owns, for every *outgoing* link:
//   - the link's APLV (updated from the primary LSETs carried in
//     backup-path register/release packets),
//   - the backup channel table (which backups traverse the link),
//   - the spare-resource policy: keep spare_bw >= max_j demand[j] — the
//     bandwidth-weighted form of §5's max(APLV) × bw rule — so any single
//     link failure can activate every affected backup; grow the pool from
//     free bandwidth when possible, accept overbooking when not (§5
//     choice (2)), and shrink/return bandwidth as backups or conflicting
//     primaries depart.
//
// No manager ever sees another link's APLV — routing uses the *advertised*
// abridgements (||APLV||_1 or the Conflict Vector) from the link-state
// database, exactly as the paper prescribes for scalability.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "drtp/messages.h"
#include "lsdb/aplv.h"
#include "lsdb/srlg_vector.h"
#include "net/bandwidth_ledger.h"
#include "net/topology.h"

namespace drtp::core {

/// How spare bandwidth is provisioned for backups.
enum class SpareMode {
  /// Paper's scheme: pool sized by max(APLV), shared by multiplexing.
  kMultiplexed,
  /// Ablation X3: one dedicated slot per backup (no sharing).
  kDedicated,
};

/// Bandwidth-weighted companion to the APLV: element j is the backup
/// bandwidth that would activate on this link if link L_j failed. The §5
/// sizing rule generalizes from `max(APLV) × bw` (identical-bandwidth
/// connections, the paper's simplification) to `max_j demand[j]` for
/// heterogeneous bandwidths.
///
/// Same hybrid storage as lsdb::Aplv: dense at paper scale, a sorted
/// nonzero-only struct-of-arrays pair above kWideLinkThreshold links.
class DemandVector {
 public:
  DemandVector() = default;
  explicit DemandVector(int num_links) : num_links_(num_links) {
    if (!wide()) demand_.assign(static_cast<std::size_t>(num_links), 0);
  }

  void Add(const routing::LinkSet& lset, Bandwidth bw);
  void Remove(const routing::LinkSet& lset, Bandwidth bw);

  /// Worst-case simultaneous activation bandwidth under a single link
  /// failure.
  Bandwidth Max() const { return max_; }

  Bandwidth at(LinkId j) const;

 private:
  bool wide() const { return num_links_ > lsdb::kWideLinkThreshold; }

  int num_links_ = 0;
  std::vector<Bandwidth> demand_;  // dense mode only
  std::vector<LinkId> keys_;       // wide mode: sorted nonzero indices
  std::vector<Bandwidth> vals_;    // wide mode: demands, parallel to keys_
  Bandwidth max_ = 0;
};

/// State the manager keeps per owned (outgoing) link.
struct ManagedLink {
  lsdb::Aplv aplv;
  DemandVector demand;
  /// Per-SRLG aggregate of the APLV (element g = Σ_{j ∈ SRLG g} aplv[j]),
  /// maintained alongside it and advertised for the SRLG-aware schemes.
  /// Default (zero groups) on untagged topologies — no extra work there.
  lsdb::SrlgVector srlg_aplv;
  /// Sum of the bandwidths of all backups on the link (dedicated-spare
  /// mode's target).
  Bandwidth total_backup_bw = 0;
  /// Backup channel table: conn id -> (primary LSET, bandwidth) as
  /// registered.
  std::unordered_map<ConnId, std::pair<routing::LinkSet, Bandwidth>> backups;
};

/// One router's DR-connection manager.
class DrConnectionManager {
 public:
  DrConnectionManager(NodeId node, const net::Topology& topo,
                      net::BandwidthLedger& ledger, SpareMode mode);

  NodeId node() const { return node_; }

  /// Handles one hop of a backup-path register packet: updates the APLV
  /// from the primary's LSET, records the backup, and reconciles the spare
  /// pool. `link` must be an outgoing link of this router. Registration
  /// never fails — when the pool cannot grow, the backup is multiplexed
  /// over existing spares (§5 choice (2)) and the hop reports overbooked.
  /// Returns true when the spare pool fully covers the post-registration
  /// target (i.e., not overbooked).
  bool RegisterBackupHop(LinkId link, const BackupRegisterPacket& packet);

  /// Handles one hop of a backup-path release packet (inverse of
  /// RegisterBackupHop); shrinks the spare pool to the new target.
  void ReleaseBackupHop(LinkId link, const BackupReleasePacket& packet);

  /// Re-evaluates the spare pool of `link` against its target; called when
  /// free bandwidth reappears (e.g., a primary on this link terminated,
  /// §5 last paragraph). Returns true when the pool meets the target.
  bool ReconcileSpare(LinkId link);

  /// The spare bandwidth this link *should* hold for its backups.
  Bandwidth SpareTarget(LinkId link) const;

  /// True when the link currently holds less spare than its target.
  bool IsOverbooked(LinkId link) const;

  const lsdb::Aplv& aplv(LinkId link) const { return Owned(link).aplv; }
  const ManagedLink& managed(LinkId link) const { return Owned(link); }

  /// Number of backups registered on the link.
  int BackupCount(LinkId link) const {
    return static_cast<int>(Owned(link).backups.size());
  }

 private:
  const ManagedLink& Owned(LinkId link) const;
  ManagedLink& Owned(LinkId link);

  NodeId node_;
  /// For SrlgVector maintenance (LinkId -> SrlgId lookups). SRLGs must be
  /// assigned before the manager is built; later AssignSrlg calls would
  /// desynchronize the aggregates.
  const net::Topology* topo_;
  net::BandwidthLedger& ledger_;
  SpareMode mode_;
  /// Keyed by LinkId; only this router's outgoing links are present.
  std::unordered_map<LinkId, ManagedLink> links_;
};

}  // namespace drtp::core
