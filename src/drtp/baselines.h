// Baseline schemes used by the evaluation harness.
//
// NoBackup measures raw network capacity (Fig. 5's reference: "the number
// of D-connections without backups"); RandomBackup isolates how much of
// D-LSR/P-LSR's fault-tolerance comes from conflict information versus
// mere disjointness (ablation X4).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "drtp/scheme.h"

namespace drtp::core {

/// Shortest-path primaries, no protection at all.
class NoBackup : public RoutingScheme {
 public:
  std::string name() const override { return "NoBackup"; }
  bool wants_backup() const override { return false; }

  RouteSelection SelectRoutes(const DrtpNetwork& net,
                              const lsdb::LinkStateDb& db, NodeId src,
                              NodeId dst, Bandwidth bw) override;
};

/// Primary as in the LSR schemes; backup chosen with *no* conflict
/// information: random link costs subject to the same disqualifiers
/// (primary links and bandwidth-short links penalized). What random
/// selection achieves is the paper's §6.2 remark that in highly-connected
/// networks "even random selection can find a backup route with small
/// conflicts".
class RandomBackup : public RoutingScheme {
 public:
  explicit RandomBackup(std::uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "RandomBackup"; }

  RouteSelection SelectRoutes(const DrtpNetwork& net,
                              const lsdb::LinkStateDb& db, NodeId src,
                              NodeId dst, Bandwidth bw) override;

  std::optional<routing::Path> SelectBackupFor(
      const DrtpNetwork& net, const lsdb::LinkStateDb& db,
      const routing::Path& primary, Bandwidth bw,
      std::span<const routing::Path> avoid = {}) override;

  /// The only stateful scheme: its random link costs advance the RNG on
  /// every selection, so a recovered daemon must resume the exact stream.
  std::string SaveState() const override { return rng_.SaveState(); }
  void LoadState(const std::string& state) override { rng_.LoadState(state); }

 private:
  Rng rng_;
};

/// Shortest disjoint backup: ignores conflicts, maximally avoids the
/// primary (classic 1+1 protection routing). Second ablation point.
class ShortestDisjointBackup : public RoutingScheme {
 public:
  std::string name() const override { return "SD-Backup"; }

  RouteSelection SelectRoutes(const DrtpNetwork& net,
                              const lsdb::LinkStateDb& db, NodeId src,
                              NodeId dst, Bandwidth bw) override;

  std::optional<routing::Path> SelectBackupFor(
      const DrtpNetwork& net, const lsdb::LinkStateDb& db,
      const routing::Path& primary, Bandwidth bw,
      std::span<const routing::Path> avoid = {}) override;
};

}  // namespace drtp::core
