// D-LSR: deterministic avoidance of backup conflicts (§3.2).
//
// Every link advertises its Conflict Vector CV_i (bit j set iff some
// primary through L_j has a backup through L_i). After the primary P is
// chosen, link L_i would create exactly Σ_{L_j ∈ LSET(P)} c_{i,j} conflicts,
// so the backup is the Dijkstra minimum of
//   C_i = Σ_{L_j ∈ LSET(P)} c_{i,j} + Q·[disqualified] + ε        (Eq. 5).
#pragma once

#include "drtp/scheme.h"

namespace drtp::core {

class Dlsr : public RoutingScheme {
 public:
  /// backup_hop_slack > 0 enforces a delay-style QoS bound on backups:
  /// at most primary_hops + slack links (§2's remark that a backup longer
  /// than the QoS allows cannot be used). 0 = unbounded.
  explicit Dlsr(int backup_hop_slack = 0) : slack_(backup_hop_slack) {}

  std::string name() const override { return "D-LSR"; }

  RouteSelection SelectRoutes(const DrtpNetwork& net,
                              const lsdb::LinkStateDb& db, NodeId src,
                              NodeId dst, Bandwidth bw) override;

  std::optional<routing::Path> SelectBackupFor(
      const DrtpNetwork& net, const lsdb::LinkStateDb& db,
      const routing::Path& primary, Bandwidth bw,
      std::span<const routing::Path> avoid = {}) override;

 private:
  int MaxHops(const routing::Path& primary) const {
    return slack_ > 0 ? primary.hops() + slack_ : 0;
  }
  int slack_;
};

}  // namespace drtp::core
