// Umbrella header: the public API of the DRTP routing library.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto topo = drtp::net::MakeWaxman({.nodes = 60, .avg_degree = 3});
//   drtp::core::DrtpNetwork net(std::move(topo));
//   drtp::lsdb::LinkStateDb db(net.topology().num_links(),
//                              net.topology().num_links());
//   drtp::core::Dlsr scheme;
//   net.PublishTo(db, /*now=*/0.0);
//   auto sel = scheme.SelectRoutes(net, db, src, dst, drtp::Mbps(1));
//   if (sel.primary) {
//     net.EstablishConnection(1, *sel.primary, drtp::Mbps(1), 0.0);
//     if (sel.backup) net.RegisterBackup(1, *sel.backup);
//   }
//   auto pbk = drtp::core::EvaluateAllSingleLinkFailures(net).value();
#pragma once

#include "common/types.h"           // ids, units
#include "drtp/baselines.h"         // NoBackup / RandomBackup / SD-Backup
#include "drtp/bounded_flood.h"     // BF scheme (§4)
#include "drtp/connection.h"        // DrConnection
#include "drtp/dlsr.h"              // D-LSR scheme (§3.2)
#include "drtp/failure.h"           // P_bk evaluation + switchover
#include "drtp/manager.h"           // per-router managers (§2.2, §5)
#include "drtp/network.h"           // DrtpNetwork facade
#include "drtp/plsr.h"              // P-LSR scheme (§3.1)
#include "drtp/scheme.h"            // RoutingScheme interface
#include "lsdb/link_state_db.h"     // advertised link state
#include "net/generators.h"         // Waxman / grid / ring / star
#include "net/topology.h"           // graph substrate
