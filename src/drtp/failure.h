// Single-link failure evaluation and channel switchover (DRTP steps 2–4).
//
// The paper's fault-tolerance metric P_bk is "the probability of activating
// a backup channel when the corresponding primary channel is disabled by a
// single link failure" (§6.2). EvaluateLinkFailure answers the what-if
// question without touching state; ApplyLinkFailure actually performs
// failure reporting, channel switching and resource reconfiguration.
#pragma once

#include <span>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "drtp/network.h"
#include "drtp/scheme.h"

namespace drtp::core {

/// Outcome of hypothetically failing one link.
struct FailureImpact {
  /// Connections whose primary traverses the failed link.
  int attempts = 0;
  /// Of those, how many could activate their backup: the backup exists,
  /// avoids the failed link, and every backup link seats the activation
  /// within spare + free bandwidth under contention (conflicting
  /// activations are admitted in connection-id order).
  int activated = 0;
};

/// What-if analysis of failing `failed` (plus its reverse under
/// duplex_failures). Non-mutating. Walks only the connections the
/// network's link→connection reverse index reports on the failed links,
/// not the whole connection table.
FailureImpact EvaluateLinkFailure(const DrtpNetwork& net, LinkId failed);

/// EvaluateLinkFailure plus the per-connection outcome, for cross-checking
/// the what-if analysis against what ApplyLinkFailure enacts.
struct FailureImpactDetail {
  FailureImpact impact;
  /// Connections that would activate a backup, ascending id.
  std::vector<ConnId> activated;
  /// Affected connections with no activatable backup, ascending id.
  std::vector<ConnId> dropped;
};
FailureImpactDetail EvaluateLinkFailureDetailed(const DrtpNetwork& net,
                                                LinkId failed);

/// Aggregates EvaluateLinkFailure over every link; links that disable no
/// primary contribute nothing. The Ratio's value() is P_bk. Reuses one
/// scratch workspace across the whole sweep — no per-link allocation.
Ratio EvaluateAllSingleLinkFailures(const DrtpNetwork& net);

/// Reference implementations that scan the full connection table per link
/// (the pre-index algorithm). Kept for the equivalence test suite — the
/// indexed versions above must produce bit-identical results.
FailureImpact EvaluateLinkFailureScan(const DrtpNetwork& net, LinkId failed);
Ratio EvaluateAllSingleLinkFailuresScan(const DrtpNetwork& net);

/// Result of actually failing a link.
struct SwitchoverReport {
  /// Connections whose backup was promoted to primary (step 3).
  std::vector<ConnId> recovered;
  /// Connections lost: primary hit and no activatable backup.
  std::vector<ConnId> dropped;
  /// Connections whose *backup* (not primary) traversed the failed link;
  /// the broken backup was released.
  std::vector<ConnId> backups_lost;
  /// Connections for which step 4 established a fresh backup (recovered
  /// or backup-lost ones; requires a reroute scheme).
  std::vector<ConnId> rerouted;
};

/// Fails `failed` for real: marks it down, releases broken backups,
/// switches affected primaries to their backups (dropping those that
/// cannot activate), and — when `reroute` is non-null — re-establishes
/// backups for every connection left unprotected, using routes from
/// `reroute` against the refreshed advertisements in `db`.
SwitchoverReport ApplyLinkFailure(DrtpNetwork& net, LinkId failed, Time now,
                                  RoutingScheme* reroute,
                                  lsdb::LinkStateDb* db);

/// Fails every up link in `links` as ONE correlated event: the whole set
/// goes down before any backup is released or promoted, so a connection
/// crossing several failed links is switched exactly once and never onto a
/// co-failed backup. Links already down are ignored; duplex reverses are
/// included under duplex_failures. This is the primitive behind node and
/// SRLG failures.
SwitchoverReport ApplyLinkSetFailure(DrtpNetwork& net,
                                     std::span<const LinkId> links, Time now,
                                     RoutingScheme* reroute,
                                     lsdb::LinkStateDb* db);

/// Fails `node`: atomically takes down every incident link (both
/// directions), dropping connections that terminate there and switching
/// the rest.
SwitchoverReport ApplyNodeFailure(DrtpNetwork& net, NodeId node, Time now,
                                  RoutingScheme* reroute,
                                  lsdb::LinkStateDb* db);

/// Fails shared-risk group `srlg`: every member link goes down together.
SwitchoverReport ApplySrlgFailure(DrtpNetwork& net, SrlgId srlg, Time now,
                                  RoutingScheme* reroute,
                                  lsdb::LinkStateDb* db);

/// All directed links incident to `node` (out + in), ascending.
std::vector<LinkId> IncidentLinks(const net::Topology& topo, NodeId node);

/// What-if SRLG fate-sharing: over every protected connection and every
/// risk group its primary crosses, the fraction of cases where the backup
/// touches *no* link of that group — i.e. the probability the backup
/// structurally survives the correlated failure that disabled the
/// primary. 1 − value() is the primary+backup co-failure rate; hard-mode
/// SRLG-disjoint schemes score exactly 1. Zero trials on untagged
/// topologies.
Ratio EvaluateSrlgSurvival(const DrtpNetwork& net);

}  // namespace drtp::core
