// DR-connection: one primary channel plus (at most) one backup channel.
//
// The paper's DRTP realizes each dependable real-time connection this way
// (§2); the backup carries no traffic until a failure on the primary
// promotes it.
#pragma once

#include <vector>

#include "common/types.h"
#include "routing/path.h"

namespace drtp::core {

/// Established DR-connection state as kept by the (simulated) network.
struct DrConnection {
  ConnId id = kInvalidConn;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth bw = 0;

  routing::Path primary;
  /// LSET of the primary route, cached for APLV bookkeeping.
  routing::LinkSet primary_lset;

  /// Zero or more backup channels, in activation-preference order (§2:
  /// "one primary and one or more backup channels"). Empty when the
  /// connection runs unprotected — baseline mode, or a post-failover
  /// connection whose backup was consumed and not yet re-established.
  /// Backups of one connection are pairwise link-disjoint (enforced at
  /// registration; an own-backup overlap would protect nothing).
  std::vector<routing::Path> backups;

  Time established_at = 0.0;

  /// Incremented every time a failure promoted one of this connection's
  /// backups (DRTP step 3).
  int failovers = 0;

  bool has_backup() const { return !backups.empty(); }

  /// The preferred (first) backup, or nullptr when unprotected.
  const routing::Path* first_backup() const {
    return backups.empty() ? nullptr : &backups.front();
  }
};

}  // namespace drtp::core
