#include "drtp/scheme.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "obs/span.h"
#include "routing/constrained.h"
#include "routing/dijkstra.h"

namespace drtp::core {
namespace {

/// Per-thread scratch for backup selection: the primary's LSET as a word
/// mask (for ConflictVector::AndPopCount), the shunned-link set as an
/// epoch-stamped array (O(marked) rebuild, no clear), and the routing
/// workspaces. thread_local because the sweep runner evaluates scenarios
/// on a pool.
struct LsrScratch {
  std::vector<std::uint64_t> primary_mask;
  /// Sorted-unique risk groups of the current primary (SRLG-aware modes
  /// only; empty otherwise).
  std::vector<SrlgId> primary_srlgs;
  std::vector<std::uint64_t> shun_stamp;
  std::uint64_t shun_epoch = 0;
  routing::DijkstraWorkspace dijkstra;
  routing::MaxHopsWorkspace max_hops;

  /// mask_words == 0 skips the mask rebuild (sparse CV scoring, or a
  /// scheme that never reads it).
  void Prepare(int num_links, int mask_words) {
    primary_mask.assign(static_cast<std::size_t>(mask_words), 0);
    if (shun_stamp.size() < static_cast<std::size_t>(num_links)) {
      shun_stamp.resize(static_cast<std::size_t>(num_links), 0);
    }
    ++shun_epoch;
  }

  void Shun(LinkId l) { shun_stamp[static_cast<std::size_t>(l)] = shun_epoch; }
  bool Shunned(LinkId l) const {
    return shun_stamp[static_cast<std::size_t>(l)] == shun_epoch;
  }
};

LsrScratch& Scratch() {
  thread_local LsrScratch scratch;
  return scratch;
}

}  // namespace

std::optional<routing::Path> SelectPrimaryMinHop(const net::Topology& topo,
                                                 const lsdb::LinkStateDb& db,
                                                 NodeId src, NodeId dst,
                                                 Bandwidth bw) {
  return routing::CheapestPathInt(
      topo, src, dst,
      [&](LinkId l) {
        const lsdb::LinkRecord& rec = db.record(l);
        return rec.up && rec.free_for_primary >= bw
                   ? std::int64_t{1}
                   : routing::kInfiniteIntCost;
      },
      Scratch().dijkstra);
}

namespace detail {

std::optional<routing::Path> SelectPrimaryMinHopBinaryHeap(
    const net::Topology& topo, const lsdb::LinkStateDb& db, NodeId src,
    NodeId dst, Bandwidth bw) {
  return routing::CheapestPath(
      topo, src, dst,
      [&](LinkId l) {
        const lsdb::LinkRecord& rec = db.record(l);
        return rec.up && rec.free_for_primary >= bw ? 1.0
                                                    : routing::kInfiniteCost;
      },
      Scratch().dijkstra);
}

}  // namespace detail

std::optional<routing::Path> RoutingScheme::SelectBackupFor(
    const DrtpNetwork&, const lsdb::LinkStateDb&, const routing::Path&,
    Bandwidth, std::span<const routing::Path>) {
  return std::nullopt;
}

std::optional<routing::Path> SelectBackupLsr(
    const net::Topology& topo, const lsdb::LinkStateDb& db,
    const routing::LinkSet& primary, NodeId src, NodeId dst, Bandwidth bw,
    bool deterministic, std::span<const routing::Path> avoid, int max_hops,
    CvScoring scoring, SrlgMode srlg_mode) {
  // Sampled 1-in-4: runs once per admission at a few µs per call, where a
  // full span's clock reads are a measurable fraction of the kernel (the
  // CI obs-overhead gate budget; see docs/OBSERVABILITY.md).
  DRTP_OBS_SPAN_SAMPLED("drtp.kernel.backup_select", 2);
  const int words = (topo.num_links() + 63) / 64;
  const bool use_mask =
      deterministic && (scoring == CvScoring::kMask ||
                        (scoring == CvScoring::kAuto &&
                         words <= kCvMaskMaxWords));
  LsrScratch& scratch = Scratch();
  scratch.Prepare(topo.num_links(), use_mask ? words : 0);
  for (LinkId l : primary) {
    if (use_mask) {
      scratch.primary_mask[static_cast<std::size_t>(l) / 64] |=
          std::uint64_t{1} << (static_cast<unsigned>(l) % 64);
    }
    scratch.Shun(l);
  }
  for (const routing::Path& path : avoid) {
    for (LinkId l : path.links()) scratch.Shun(l);
  }
  // Risk groups the primary traverses. Empty (untagged topology, untagged
  // primary, or srlg_mode off) disables every SRLG term below, so those
  // runs execute the base schemes' exact arithmetic.
  scratch.primary_srlgs.clear();
  if (srlg_mode != SrlgMode::kOff && topo.has_srlgs()) {
    for (LinkId l : primary) {
      const SrlgId g = topo.srlg(l);
      if (g != kInvalidSrlg) scratch.primary_srlgs.push_back(g);
    }
    std::sort(scratch.primary_srlgs.begin(), scratch.primary_srlgs.end());
    scratch.primary_srlgs.erase(std::unique(scratch.primary_srlgs.begin(),
                                            scratch.primary_srlgs.end()),
                                scratch.primary_srlgs.end());
  }
  const bool srlg_aware = !scratch.primary_srlgs.empty();

  const auto cost = [&](LinkId l) {
    const lsdb::LinkRecord& rec = db.record(l);
    if (!rec.up) return routing::kInfiniteCost;
    if (srlg_aware) {
      const SrlgId g = topo.srlg(l);
      if (g != kInvalidSrlg &&
          std::binary_search(scratch.primary_srlgs.begin(),
                             scratch.primary_srlgs.end(), g)) {
        // This link fails together with the primary.
        if (srlg_mode == SrlgMode::kHard) return routing::kInfiniteCost;
        // kSoft: usable, but only when nothing group-disjoint exists.
      }
    }
    // Eq. 5's conflict count, by whichever access pattern fits the width:
    // one AND+popcount sweep over the mask (~64 links per instruction) or
    // |LSET| bit probes — the same exact integer either way.
    double c = deterministic
                   ? static_cast<double>(
                         use_mask ? rec.cv.AndPopCount(scratch.primary_mask)
                                  : rec.cv.CountIn(primary))
                   : static_cast<double>(rec.aplv_l1);
    if (srlg_aware) {
      const SrlgId g = topo.srlg(l);
      if (g != kInvalidSrlg &&
          std::binary_search(scratch.primary_srlgs.begin(),
                             scratch.primary_srlgs.end(), g)) {
        c += kSrlgPenalty;
      }
      // Advertised exposure of the primary's groups on this link: prefer
      // links whose risk groups protect fewer of the same primaries.
      c += static_cast<double>(rec.srlg_aplv.SumOver(scratch.primary_srlgs));
    }
    c += kEpsilon;
    if (scratch.Shunned(l) || rec.available_for_backup < bw) {
      c += kPenaltyQ;
    }
    return c;
  };
  if (max_hops > 0) {
    return routing::CheapestPathMaxHops(topo, src, dst, cost, max_hops,
                                        scratch.max_hops);
  }
  return routing::CheapestPath(topo, src, dst, cost, scratch.dijkstra);
}

int ProtectConnection(RoutingScheme& scheme, DrtpNetwork& net,
                      const lsdb::LinkStateDb& db, ConnId id, int count) {
  const DrConnection* conn = net.Find(id);
  DRTP_CHECK_MSG(conn != nullptr, "no connection " << id);
  int registered = 0;
  while (static_cast<int>(conn->backups.size()) < count) {
    auto backup = scheme.SelectBackupFor(net, db, conn->primary, conn->bw,
                                         conn->backups);
    if (!backup.has_value()) break;
    // The Q penalty is soft; a candidate that still overlaps the primary
    // or an existing backup means no further disjoint route exists — stop
    // rather than register a useless overlay (an own-backup overlap would
    // also be rejected by RegisterBackup).
    bool disjoint = backup->LinkDisjoint(conn->primary);
    for (const routing::Path& existing : conn->backups) {
      if (!disjoint) break;
      if (!existing.LinkDisjoint(*backup)) disjoint = false;
    }
    if (!disjoint) break;
    net.RegisterBackup(id, *backup);
    ++registered;
  }
  return registered;
}

}  // namespace drtp::core
