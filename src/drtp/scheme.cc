#include "drtp/scheme.h"

#include "common/check.h"
#include "routing/constrained.h"
#include "routing/dijkstra.h"

namespace drtp::core {

std::optional<routing::Path> SelectPrimaryMinHop(const net::Topology& topo,
                                                 const lsdb::LinkStateDb& db,
                                                 NodeId src, NodeId dst,
                                                 Bandwidth bw) {
  return routing::CheapestPath(topo, src, dst, [&](LinkId l) {
    const lsdb::LinkRecord& rec = db.record(l);
    return rec.up && rec.free_for_primary >= bw ? 1.0
                                                : routing::kInfiniteCost;
  });
}

std::optional<routing::Path> RoutingScheme::SelectBackupFor(
    const DrtpNetwork&, const lsdb::LinkStateDb&, const routing::Path&,
    Bandwidth, std::span<const routing::Path>) {
  return std::nullopt;
}

std::optional<routing::Path> SelectBackupLsr(
    const net::Topology& topo, const lsdb::LinkStateDb& db,
    const routing::LinkSet& primary, NodeId src, NodeId dst, Bandwidth bw,
    bool deterministic, std::span<const routing::Path> avoid, int max_hops) {
  routing::LinkSet shunned = primary;
  for (const routing::Path& path : avoid) {
    for (LinkId l : path.links()) shunned.push_back(l);
  }
  shunned = routing::MakeLinkSet(std::move(shunned));

  const auto cost = [&](LinkId l) {
    const lsdb::LinkRecord& rec = db.record(l);
    if (!rec.up) return routing::kInfiniteCost;
    double c = deterministic ? static_cast<double>(rec.cv.CountIn(primary))
                             : static_cast<double>(rec.aplv_l1);
    c += kEpsilon;
    if (routing::SetContains(shunned, l) || rec.available_for_backup < bw) {
      c += kPenaltyQ;
    }
    return c;
  };
  if (max_hops > 0) {
    return routing::CheapestPathMaxHops(topo, src, dst, cost, max_hops);
  }
  return routing::CheapestPath(topo, src, dst, cost);
}

int ProtectConnection(RoutingScheme& scheme, DrtpNetwork& net,
                      const lsdb::LinkStateDb& db, ConnId id, int count) {
  const DrConnection* conn = net.Find(id);
  DRTP_CHECK_MSG(conn != nullptr, "no connection " << id);
  int registered = 0;
  while (static_cast<int>(conn->backups.size()) < count) {
    auto backup = scheme.SelectBackupFor(net, db, conn->primary, conn->bw,
                                         conn->backups);
    if (!backup.has_value()) break;
    // The Q penalty is soft; a candidate that still overlaps the primary
    // or an existing backup means no further disjoint route exists — stop
    // rather than register a useless overlay (an own-backup overlap would
    // also be rejected by RegisterBackup).
    bool disjoint = backup->LinkDisjoint(conn->primary);
    for (const routing::Path& existing : conn->backups) {
      if (!disjoint) break;
      if (!existing.LinkDisjoint(*backup)) disjoint = false;
    }
    if (!disjoint) break;
    net.RegisterBackup(id, *backup);
    ++registered;
  }
  return registered;
}

}  // namespace drtp::core
