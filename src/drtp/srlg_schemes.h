// SRLG-aware routing schemes.
//
// Two families layered on the paper's link-state schemes:
//
//  - SrlgLsr: P-LSR / D-LSR with SRLG-disciplined backup selection. The
//    primary is the usual min-hop route; the backup Dijkstra additionally
//    prices links sharing a risk group with the primary out of the search
//    (hard mode) or penalizes them by kSrlgPenalty (soft mode), and in
//    both modes biases toward links whose advertised per-SRLG exposure to
//    the primary's groups is low. On an untagged topology every variant
//    is bit-identical to its base scheme.
//
//  - SrlgPairScheme: the quality baseline. Routes primary and backup
//    *jointly* via the pruned active/protection pair search
//    (routing::FindSrlgDisjointPair), falling back to min-hop primary
//    plus a hard-constrained backup Dijkstra when no pair exists within
//    the candidate budget.
#pragma once

#include "drtp/scheme.h"

namespace drtp::core {

/// SRLG-aware P-LSR (deterministic == false) or D-LSR (== true); `mode`
/// must be kSoft or kHard. Covers the four registry labels
/// {P,D}-LSR-SRLG-{SOFT,HARD}.
class SrlgLsr : public RoutingScheme {
 public:
  SrlgLsr(bool deterministic, SrlgMode mode, int backup_hop_slack = 0);

  std::string name() const override;

  RouteSelection SelectRoutes(const DrtpNetwork& net,
                              const lsdb::LinkStateDb& db, NodeId src,
                              NodeId dst, Bandwidth bw) override;

  std::optional<routing::Path> SelectBackupFor(
      const DrtpNetwork& net, const lsdb::LinkStateDb& db,
      const routing::Path& primary, Bandwidth bw,
      std::span<const routing::Path> avoid = {}) override;

  bool requires_srlg_disjoint_backup() const override {
    return mode_ == SrlgMode::kHard;
  }

 private:
  int MaxHops(const routing::Path& primary) const {
    return slack_ > 0 ? primary.hops() + slack_ : 0;
  }

  bool deterministic_;
  SrlgMode mode_;
  int slack_;
};

/// Joint primary+backup selection through the pruned SRLG-disjoint pair
/// search (registry label "SRLG-PAIR"). Active candidates are min-hop
/// over primary-feasible links; protections are scored like P-LSR's
/// Eq. 4 ingredient (||APLV||_1 + ε) over backup-feasible links.
class SrlgPairScheme : public RoutingScheme {
 public:
  std::string name() const override { return "SRLG-PAIR"; }

  RouteSelection SelectRoutes(const DrtpNetwork& net,
                              const lsdb::LinkStateDb& db, NodeId src,
                              NodeId dst, Bandwidth bw) override;

  std::optional<routing::Path> SelectBackupFor(
      const DrtpNetwork& net, const lsdb::LinkStateDb& db,
      const routing::Path& primary, Bandwidth bw,
      std::span<const routing::Path> avoid = {}) override;

  bool requires_srlg_disjoint_backup() const override { return true; }
};

}  // namespace drtp::core
