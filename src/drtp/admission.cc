#include "drtp/admission.h"

#include <utility>

namespace drtp::core {

AdmitOutcome AdmitConnection(RoutingScheme& scheme, DrtpNetwork& net,
                             const lsdb::LinkStateDb& db, ConnId id,
                             NodeId src, NodeId dst, Bandwidth bw, Time now,
                             const AdmitOptions& options) {
  AdmitOutcome out;

  RouteSelection sel = scheme.SelectRoutes(net, db, src, dst, bw);
  out.control_messages = sel.control_messages;
  out.control_bytes = sel.control_bytes;

  if (!sel.primary.has_value() ||
      !net.EstablishConnection(id, *sel.primary, bw, now)) {
    return out;  // blocked
  }
  out.admitted = true;

  // A "backup" covering every primary link (schemes shun rather than
  // forbid primary links) protects nothing; admit unprotected instead of
  // booking spare for vacuous coverage.
  if (sel.backup.has_value() &&
      sel.backup->OverlapCount(*sel.primary) >= sel.primary->hops()) {
    sel.backup.reset();
  }

  if (scheme.wants_backup() && options.num_backups > 0 &&
      sel.backup.has_value()) {
    out.overbooked_hops = net.RegisterBackup(id, *sel.backup);
    out.backup = sel.backup;
    if (options.num_backups > 1) {
      out.extra_backups =
          ProtectConnection(scheme, net, db, id, options.num_backups);
    }
  }
  out.primary = std::move(sel.primary);
  return out;
}

}  // namespace drtp::core
