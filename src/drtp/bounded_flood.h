// BF: routing with bounded flooding (§4).
//
// On a request, the source floods channel-discovery packets (CDPs) toward
// the destination. A CDP is forwarded to neighbor k only if it passes
//   - the distance test:   hops-after-forwarding + minhops(k, dst)
//                          stays within hc_limit = ceil(rho*D) + sigma —
//                          this bounds the flood to an ellipse (in hop
//                          metric) with the endpoints as loci,
//   - the loop-freedom test: k not already on the CDP's node list,
//   - the bandwidth test:  bw_req <= total - prime on the link (a backup
//                          can share the spare pool, so spare is usable),
//   - the valid-detour test (non-first copies only):
//                          hc_curr <= alpha * min_dist + beta, where
//                          min_dist comes from the node's pending-
//                          connection-table entry.
// Each CDP carries primary_flag, which stays 1 only while every traversed
// link also has bw_req of *free* bandwidth (total - prime - spare).
// The destination gathers candidate routes (its CRT) and picks
//   primary: the shortest candidate with primary_flag == 1,
//   backup:  the candidate minimizing (overlap with primary, hops).
#pragma once

#include <cstdint>

#include "drtp/scheme.h"
#include "routing/distance_table.h"

namespace drtp::core {

struct FloodConfig {
  /// hc_limit = ceil(rho * minhops(src,dst)) + sigma. The paper's chosen
  /// operating point widens the bound by two hops (§6.2).
  double rho = 1.0;
  int sigma = 2;
  /// Valid-detour test: hc_curr <= alpha * min_dist + beta.
  double alpha = 1.0;
  int beta = 2;
  /// Safety budget on CDP forwards per request; exceeding it stops the
  /// flood (the already-gathered candidates are still used) and is
  /// reported in FloodStats — never silently.
  std::int64_t max_cdps = 500000;
};

class BoundedFlooding : public RoutingScheme {
 public:
  /// The distance tables are built once from `topo` (§4.1: updated only on
  /// topology change); call RebuildDistanceTable after failing links.
  explicit BoundedFlooding(const net::Topology& topo, FloodConfig config = {});

  std::string name() const override { return "BF"; }

  RouteSelection SelectRoutes(const DrtpNetwork& net,
                              const lsdb::LinkStateDb& db, NodeId src,
                              NodeId dst, Bandwidth bw) override;

  /// Step-4 reroute: floods again and picks the minimally-overlapping
  /// candidate relative to the existing primary.
  std::optional<routing::Path> SelectBackupFor(
      const DrtpNetwork& net, const lsdb::LinkStateDb& db,
      const routing::Path& primary, Bandwidth bw,
      std::span<const routing::Path> avoid = {}) override;

  /// Distance tables are rebuilt only upon change of network topology
  /// (§4.1); call after SetLinkDown/SetLinkUp.
  void RebuildDistanceTable(const DrtpNetwork& net);

  void OnTopologyChanged(const DrtpNetwork& net) override {
    RebuildDistanceTable(net);
  }

  struct FloodStats {
    std::int64_t cdp_forwards = 0;
    std::int64_t cdp_bytes = 0;
    int candidates = 0;
    bool budget_exhausted = false;
  };
  /// Statistics of the most recent flood.
  const FloodStats& last_stats() const { return stats_; }

  const FloodConfig& config() const { return config_; }

 private:
  /// One CRT entry (§4.1): a route a CDP safely traversed.
  struct Candidate {
    routing::Path route;
    bool primary_flag = false;
  };

  /// Runs the bounded flood and returns the destination's CRT.
  std::vector<Candidate> Flood(const DrtpNetwork& net, NodeId src, NodeId dst,
                               Bandwidth bw);

  FloodConfig config_;
  routing::DistanceTable dt_;
  FloodStats stats_;
};

}  // namespace drtp::core
