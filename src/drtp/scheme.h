// RoutingScheme — the interface the paper's three schemes implement.
//
// A scheme answers one question: given a DR-connection request (src, dst,
// bw) and the information it is allowed to see, which primary and backup
// routes should be used? Link-state schemes see only the advertised
// LinkStateDb; bounded flooding sees the per-node authoritative bandwidth
// (it is on-demand — the flooded CDPs sample real state, §4).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "common/error.h"
#include "common/types.h"
#include "drtp/network.h"
#include "lsdb/link_state_db.h"
#include "routing/path.h"

namespace drtp::core {

/// Outcome of route discovery for one request.
struct RouteSelection {
  /// Absent => the request is blocked (no feasible primary).
  std::optional<routing::Path> primary;
  /// Absent => the connection runs unprotected (only baselines do this on
  /// purpose; the paper's schemes always produce some backup when a path
  /// exists).
  std::optional<routing::Path> backup;

  /// Control-plane cost of this discovery: messages sent (CDP forwards for
  /// BF; zero for link-state schemes whose cost is the periodic
  /// advertisement traffic) and their bytes.
  std::int64_t control_messages = 0;
  std::int64_t control_bytes = 0;
};

class RoutingScheme {
 public:
  virtual ~RoutingScheme() = default;

  virtual std::string name() const = 0;

  /// False for the unprotected baseline; the simulator then skips backup
  /// registration entirely.
  virtual bool wants_backup() const { return true; }

  /// Discovers primary and backup routes for a request. `db` is the
  /// advertised link-state view; `net` is the authoritative state, which
  /// only on-demand schemes (BF) may consult, and then only for what a
  /// real node could observe locally.
  virtual RouteSelection SelectRoutes(const DrtpNetwork& net,
                                      const lsdb::LinkStateDb& db, NodeId src,
                                      NodeId dst, Bandwidth bw) = 0;

  /// Re-discovers a backup for an *existing* primary — DRTP step 4
  /// (resource reconfiguration) after a failover consumed the backup or a
  /// failure broke it, and the building block for multi-backup
  /// connections. Routes in `avoid` (typically the connection's other
  /// backups) are shunned like the primary itself. Default: unsupported
  /// (nullopt).
  virtual std::optional<routing::Path> SelectBackupFor(
      const DrtpNetwork& net, const lsdb::LinkStateDb& db,
      const routing::Path& primary, Bandwidth bw,
      std::span<const routing::Path> avoid = {});

  /// Called after a link goes down or comes back up. Schemes holding
  /// topology-derived caches (BF's distance tables, §4.1) refresh them
  /// here; stateless schemes ignore it.
  virtual void OnTopologyChanged(const DrtpNetwork& net) { (void)net; }

  /// Scheme-private *history* state for daemon snapshots (drtp.snap/1):
  /// RNG stream positions and the like — anything a byte-identical
  /// continuation needs that is not a pure function of the current
  /// network. Topology-derived caches (BF's distance tables) are NOT
  /// state; they are rebuilt via OnTopologyChanged. Stateless schemes
  /// (the default) return "".
  virtual std::string SaveState() const { return {}; }

  /// Restores SaveState() output. The default accepts only the empty
  /// string — feeding state to a stateless scheme means the snapshot was
  /// written under a different scheme.
  virtual void LoadState(const std::string& state) {
    if (!state.empty()) {
      throw ParseError("scheme '" + name() + "' carries no state, got " +
                       std::to_string(state.size()) + " bytes");
    }
  }

  /// True when the scheme *promises* SRLG-disjoint backups (hard-mode
  /// SRLG variants). Auditors use this to arm the backup_shares_srlg
  /// invariant; soft-mode variants only bias away from shared groups and
  /// must not arm it.
  virtual bool requires_srlg_disjoint_backup() const { return false; }
};

/// How backup selection treats links sharing a risk group with the
/// primary (§"SRLG-disjoint routing"): kOff ignores SRLGs entirely (the
/// paper's original schemes), kSoft penalizes shared-group links like a
/// second Q term so they are used only as a last resort, kHard forbids
/// them outright — a backup then either avoids every primary SRLG or does
/// not exist.
enum class SrlgMode {
  kOff,
  kSoft,
  kHard,
};

/// How D-LSR's Eq. 5 conflict term is evaluated per candidate link.
/// Both strategies compute the same exact integer (hence the same cost,
/// hence the same route); they differ only in access pattern.
enum class CvScoring {
  /// Pick by width: the word-wise mask sweep up to kCvMaskMaxWords words,
  /// the per-bit probe beyond that.
  kAuto,
  /// cv.AndPopCount against the primary's precomputed bitmask — O(words)
  /// per candidate, ~64 links per instruction. Wins when the whole mask
  /// fits in a few cache lines (paper-scale graphs).
  kMask,
  /// cv.CountIn over the primary's LSET — O(|LSET|) probes per candidate,
  /// independent of network width. Wins on wide graphs where a full-width
  /// mask sweep would stream kilobytes per candidate.
  kSparse,
};

/// kAuto switches from kMask to kSparse above this many 64-bit mask words
/// (16 words = 1024 links — the mask still fits in two cache lines' worth
/// of reads per candidate at that point, and a 60-node run stays on the
/// exact pre-hybrid code path).
inline constexpr int kCvMaskMaxWords = 16;

/// Backup selection shared by the two link-state schemes: Dijkstra over
/// Eq. 4 (deterministic == false, cost ||APLV||_1) or Eq. 5
/// (deterministic == true, cost Σ c_{i,j} over the primary's LSET).
/// Links of `avoid` routes are penalized like the primary's own links.
/// max_hops > 0 restricts the search to QoS-feasible (delay-bounded)
/// backups (§2: a backup longer than the QoS allows protects nothing);
/// 0 means unbounded.
/// `srlg_mode` layers the SRLG discipline on top: links sharing a group
/// with the primary are priced out (kHard) or penalized by kSrlgPenalty
/// (kSoft), and both modes add the advertised per-SRLG exposure of the
/// primary's groups so ties break toward links whose groups carry fewer
/// of the same primaries. On an untagged topology (or an untagged
/// primary) every mode degenerates to the exact base arithmetic.
std::optional<routing::Path> SelectBackupLsr(
    const net::Topology& topo, const lsdb::LinkStateDb& db,
    const routing::LinkSet& primary, NodeId src, NodeId dst, Bandwidth bw,
    bool deterministic, std::span<const routing::Path> avoid = {},
    int max_hops = 0, CvScoring scoring = CvScoring::kAuto,
    SrlgMode srlg_mode = SrlgMode::kOff);

/// Registers up to `count` pairwise-disjoint backups for the connection's
/// primary using scheme.SelectBackupFor, stopping early when no further
/// disjoint backup exists. Returns how many were registered.
int ProtectConnection(RoutingScheme& scheme, DrtpNetwork& net,
                      const lsdb::LinkStateDb& db, ConnId id, int count);

/// Shared helper: minimum-hop primary over links advertising enough free
/// bandwidth (used by both LSR schemes; §2.2 step 1). Unit costs are
/// integers, so this runs on the bucket-queue Dijkstra with early exit at
/// the destination — the identical route the binary-heap kernel picks.
std::optional<routing::Path> SelectPrimaryMinHop(const net::Topology& topo,
                                                 const lsdb::LinkStateDb& db,
                                                 NodeId src, NodeId dst,
                                                 Bandwidth bw);

namespace detail {
/// Pre-radix reference: the double-cost binary-heap formulation of
/// SelectPrimaryMinHop, kept as the differential-test oracle.
std::optional<routing::Path> SelectPrimaryMinHopBinaryHeap(
    const net::Topology& topo, const lsdb::LinkStateDb& db, NodeId src,
    NodeId dst, Bandwidth bw);
}  // namespace detail

/// Large-but-finite penalty for disqualified links (Eq. 4/5's Q): a
/// penalized link can still be used when nothing better exists, mirroring
/// §5's decision to accept imperfect backups rather than reject.
inline constexpr double kPenaltyQ = 1e7;

/// Tie-break toward shorter routes (Eq. 4/5's epsilon, < 1).
inline constexpr double kEpsilon = 1e-3;

/// Soft-mode SRLG penalty: dominates any realistic conflict count (so a
/// group-sharing link loses to every clean alternative) while staying
/// below kPenaltyQ (so sharing a risk group is still preferred over
/// reusing a primary link or an out-of-bandwidth one).
inline constexpr double kSrlgPenalty = 1e6;

}  // namespace drtp::core
