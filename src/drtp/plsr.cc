#include "drtp/plsr.h"

namespace drtp::core {

RouteSelection Plsr::SelectRoutes(const DrtpNetwork& net,
                                  const lsdb::LinkStateDb& db, NodeId src,
                                  NodeId dst, Bandwidth bw) {
  RouteSelection sel;
  sel.primary = SelectPrimaryMinHop(net.topology(), db, src, dst, bw);
  if (!sel.primary.has_value()) return sel;
  sel.backup = SelectBackupLsr(net.topology(), db, sel.primary->ToLinkSet(),
                               src, dst, bw, /*deterministic=*/false, {},
                               MaxHops(*sel.primary));
  return sel;
}

std::optional<routing::Path> Plsr::SelectBackupFor(
    const DrtpNetwork& net, const lsdb::LinkStateDb& db,
    const routing::Path& primary, Bandwidth bw,
    std::span<const routing::Path> avoid) {
  return SelectBackupLsr(net.topology(), db, primary.ToLinkSet(),
                         primary.src(), primary.dst(), bw,
                         /*deterministic=*/false, avoid, MaxHops(primary));
}

}  // namespace drtp::core
