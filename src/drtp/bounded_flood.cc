#include "drtp/bounded_flood.h"

#include <cmath>
#include <deque>
#include <unordered_map>

#include "common/check.h"
#include "obs/span.h"

namespace drtp::core {
namespace {

/// A channel-discovery packet in flight (§4.1). `nodes` is the CDP's
/// `list` plus the node currently holding it; hc_curr == nodes.size()-1.
struct Cdp {
  std::vector<NodeId> nodes;
  bool primary_flag = true;
};

int HopCount(const Cdp& m) { return static_cast<int>(m.nodes.size()) - 1; }

/// Wire size: fixed header (ids, hop fields, bw_req, flag) + node list.
std::int64_t CdpBytes(const Cdp& m) {
  return 24 + 4 * static_cast<std::int64_t>(m.nodes.size());
}

}  // namespace

BoundedFlooding::BoundedFlooding(const net::Topology& topo,
                                 FloodConfig config)
    : config_(config), dt_(routing::DistanceTable::Build(topo)) {
  DRTP_CHECK(config_.rho >= 1.0);
  DRTP_CHECK(config_.sigma >= 0);
  DRTP_CHECK(config_.alpha >= 1.0);
  DRTP_CHECK(config_.beta >= 0);
  DRTP_CHECK(config_.max_cdps > 0);
}

void BoundedFlooding::RebuildDistanceTable(const DrtpNetwork& net) {
  // Down links are excluded by rebuilding on a pruned copy of the graph:
  // distance tables are hop counts over *usable* links.
  net::Topology pruned;
  const net::Topology& topo = net.topology();
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const net::Node& node = topo.node(n);
    pruned.AddNode(node.x, node.y);
  }
  // AddLink ids will not match the original; we only need distances, which
  // depend on adjacency alone.
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (!net.IsLinkUp(l)) continue;
    const net::Link& link = topo.link(l);
    pruned.AddLink(link.src, link.dst, link.capacity);
  }
  dt_ = routing::DistanceTable::Build(pruned);
}

std::vector<BoundedFlooding::Candidate> BoundedFlooding::Flood(
    const DrtpNetwork& net, NodeId src, NodeId dst, Bandwidth bw) {
  const net::Topology& topo = net.topology();
  const net::BandwidthLedger& ledger = net.ledger();
  DRTP_CHECK(dt_.num_nodes() == topo.num_nodes());
  stats_ = FloodStats{};
  std::vector<Candidate> crt;
  if (!dt_.Reachable(src, dst)) return crt;

  const int hc_limit =
      static_cast<int>(std::ceil(config_.rho * dt_.MinHops(src, dst))) +
      config_.sigma;

  // Bandwidth tests (§4.2/4.3). A candidate route must be able to carry
  // the connection as a *backup*, i.e. within total - prime (the spare
  // pool is shareable); primary_flag additionally demands free bandwidth.
  const auto backup_ok = [&](LinkId l) {
    return net.IsLinkUp(l) && bw <= ledger.total(l) - ledger.prime(l);
  };
  const auto primary_ok = [&](LinkId l) { return ledger.free(l) >= bw; };

  // Pending connection table (min_dist per visited node).
  std::unordered_map<NodeId, int> pct;
  std::deque<Cdp> queue;
  queue.push_back(Cdp{.nodes = {src}, .primary_flag = true});
  pct.emplace(src, 0);

  while (!queue.empty()) {
    const Cdp m = std::move(queue.front());
    queue.pop_front();
    const NodeId here = m.nodes.back();

    if (here == dst) {
      // Destination: fill the candidate-route table (§4.4).
      auto route = routing::Path::FromNodes(topo, m.nodes);
      DRTP_CHECK(route.has_value());
      crt.push_back(Candidate{std::move(*route), m.primary_flag});
      continue;
    }

    // Valid-detour test (§4.3) against the PCT entry; the entry exists for
    // every dequeued CDP (created at enqueue time), and FIFO order keeps
    // min_dist equal to the first — shortest — arrival.
    const int min_dist = pct.at(here);
    if (HopCount(m) >
        static_cast<int>(config_.alpha * min_dist) + config_.beta) {
      continue;
    }

    for (LinkId l : topo.out_links(here)) {
      const NodeId k = topo.link(l).dst;
      // Distance test: hops after forwarding plus the remaining minimum
      // distance must fit in the flooding bound.
      if (HopCount(m) + 1 + dt_.MinHops(k, dst) > hc_limit) continue;
      // Loop-freedom test.
      bool looped = false;
      for (NodeId n : m.nodes) {
        if (n == k) {
          looped = true;
          break;
        }
      }
      if (looped) continue;
      // Bandwidth test.
      if (!backup_ok(l)) continue;
      // Valid-detour at the receiver, applied eagerly: a copy that would
      // be dropped on dequeue is never transmitted. (Equivalent to the
      // paper's receive-side test, but spares queue memory.)
      const int hc_next = HopCount(m) + 1;
      auto [it, first_copy] = pct.try_emplace(k, hc_next);
      if (!first_copy && k != dst &&
          hc_next >
              static_cast<int>(config_.alpha * it->second) + config_.beta) {
        continue;
      }

      if (stats_.cdp_forwards >= config_.max_cdps) {
        stats_.budget_exhausted = true;
        queue.clear();
        break;
      }
      Cdp fwd;
      fwd.nodes = m.nodes;
      fwd.nodes.push_back(k);
      fwd.primary_flag = m.primary_flag && primary_ok(l);
      ++stats_.cdp_forwards;
      stats_.cdp_bytes += CdpBytes(fwd);
      queue.push_back(std::move(fwd));
    }
  }
  stats_.candidates = static_cast<int>(crt.size());
  return crt;
}

RouteSelection BoundedFlooding::SelectRoutes(const DrtpNetwork& net,
                                             const lsdb::LinkStateDb&,
                                             NodeId src, NodeId dst,
                                             Bandwidth bw) {
  DRTP_OBS_SPAN("drtp.kernel.bf_flood");
  RouteSelection sel;
  const std::vector<Candidate> crt = Flood(net, src, dst, bw);
  sel.control_messages = stats_.cdp_forwards;
  sel.control_bytes = stats_.cdp_bytes;

  // Primary: shortest candidate with primary_flag set (§4.4). FIFO flood
  // order already yields nondecreasing hop counts, but do not rely on it.
  const Candidate* best_primary = nullptr;
  for (const Candidate& c : crt) {
    if (!c.primary_flag) continue;
    if (best_primary == nullptr ||
        c.route.hops() < best_primary->route.hops()) {
      best_primary = &c;
    }
  }
  if (best_primary == nullptr) return sel;
  sel.primary = best_primary->route;

  // Backup: all remaining candidates are eligible; minimize overlap with
  // the primary, then hop count.
  const Candidate* best_backup = nullptr;
  int best_overlap = 0;
  for (const Candidate& c : crt) {
    if (&c == best_primary) continue;
    const int overlap = c.route.OverlapCount(*sel.primary);
    if (best_backup == nullptr || overlap < best_overlap ||
        (overlap == best_overlap &&
         c.route.hops() < best_backup->route.hops())) {
      best_backup = &c;
      best_overlap = overlap;
    }
  }
  if (best_backup != nullptr) sel.backup = best_backup->route;
  return sel;
}

std::optional<routing::Path> BoundedFlooding::SelectBackupFor(
    const DrtpNetwork& net, const lsdb::LinkStateDb&,
    const routing::Path& primary, Bandwidth bw,
    std::span<const routing::Path> avoid) {
  const std::vector<Candidate> crt =
      Flood(net, primary.src(), primary.dst(), bw);
  // Overlap is scored against the primary plus every route to avoid
  // (existing backups); hop count breaks ties.
  const Candidate* best = nullptr;
  int best_overlap = 0;
  for (const Candidate& c : crt) {
    if (c.route == primary) continue;
    bool is_existing = false;
    for (const routing::Path& a : avoid) {
      if (c.route == a) {
        is_existing = true;
        break;
      }
    }
    if (is_existing) continue;
    int overlap = c.route.OverlapCount(primary);
    for (const routing::Path& a : avoid) overlap += c.route.OverlapCount(a);
    if (best == nullptr || overlap < best_overlap ||
        (overlap == best_overlap && c.route.hops() < best->route.hops())) {
      best = &c;
      best_overlap = overlap;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->route;
}

}  // namespace drtp::core
