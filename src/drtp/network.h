// DrtpNetwork — the authoritative network state for DRTP.
//
// Owns the topology, the per-link bandwidth ledger, one DR-connection
// manager per router, the connection table, and link up/down state. The
// four steps of DR-connection management (§2.2) map to:
//   1. EstablishConnection  — reserve the primary route's bandwidth,
//   2/3. RegisterBackup     — walk the backup route hop-by-hop with a
//                             backup-path register packet (APLV + spares),
//   4. ReleaseConnection    — return every resource; freed bandwidth is
//                             offered to still-underprovisioned spare
//                             pools (§5 last paragraph).
// Failure handling (ActivateBackup / failure.h) implements DRTP steps
// "failure reporting and channel switching" and "resource reconfiguration".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "common/types.h"
#include "drtp/connection.h"
#include "drtp/manager.h"
#include "lsdb/link_state_db.h"
#include "net/bandwidth_ledger.h"
#include "net/topology.h"

namespace drtp::core {

struct NetworkConfig {
  SpareMode spare_mode = SpareMode::kMultiplexed;
  /// When true, failing a link also fails its reverse half (fiber-cut
  /// model); the paper's examples treat unidirectional failures, the
  /// default here.
  bool duplex_failures = false;
};

class DrtpNetwork {
 public:
  explicit DrtpNetwork(net::Topology topo, NetworkConfig config = {});

  DrtpNetwork(const DrtpNetwork&) = delete;
  DrtpNetwork& operator=(const DrtpNetwork&) = delete;

  const net::Topology& topology() const { return topo_; }
  const net::BandwidthLedger& ledger() const { return ledger_; }
  const NetworkConfig& config() const { return config_; }

  // ---- link state -------------------------------------------------------

  bool IsLinkUp(LinkId l) const;
  /// Marks the link (and, under duplex_failures, its reverse) down. Does
  /// not touch connections — that is the failure engine's job. Idempotent.
  void SetLinkDown(LinkId l);
  void SetLinkUp(LinkId l);
  std::vector<LinkId> DownLinks() const { return down_links_; }
  /// The same set without the copy (maintained incrementally, sorted).
  const std::vector<LinkId>& down_links() const { return down_links_; }

  // ---- connection management -------------------------------------------

  /// Step 1: reserves `bw` of primary bandwidth on every link of
  /// `primary`, all-or-nothing; records the connection. Fails (false, no
  /// state change) if any link is down or lacks free bandwidth, or the id
  /// is already in use is a programming error (checked).
  [[nodiscard]] bool EstablishConnection(ConnId id,
                                         const routing::Path& primary,
                                         Bandwidth bw, Time now);

  /// Steps 2–3: sends the backup-path register packet hop-by-hop along
  /// `backup` and appends it to the connection's backup list. Never
  /// rejects (overbooking is accepted per §5); returns the number of hops
  /// left overbooked. The new backup must not share links with the
  /// connection's existing backups (checked) — §2's "one or more backup
  /// channels" are alternatives, not overlays.
  int RegisterBackup(ConnId id, const routing::Path& backup);

  /// Releases the backup at `index` in the connection's list (used when a
  /// failure breaks one backup of several).
  void ReleaseBackupAt(ConnId id, std::size_t index);

  /// Releases every backup of the connection (re-routing, promotion).
  void ReleaseAllBackups(ConnId id);

  /// Step 4: releases every resource of the connection and erases it.
  void ReleaseConnection(ConnId id);

  /// Channel switching (DRTP step 3): promotes the backup at `index` to
  /// be the new primary. The old primary's bandwidth is released, every
  /// backup deregistered (their registrations referenced the old
  /// primary's LSET), and primary bandwidth reserved along the promoted
  /// route — drawing on the spare pool (possibly leaving other backups
  /// overbooked) when free bandwidth alone does not suffice. Returns
  /// false — with the connection dropped and its resources released — if
  /// even that fails.
  [[nodiscard]] bool ActivateBackup(ConnId id, std::size_t index, Time now);

  /// Convenience: promote the preferred (first) backup.
  [[nodiscard]] bool ActivateBackup(ConnId id, Time now) {
    return ActivateBackup(id, 0, now);
  }

  // ---- queries ----------------------------------------------------------

  const DrConnection* Find(ConnId id) const;
  const std::map<ConnId, DrConnection>& connections() const {
    return conns_;
  }
  int ActiveCount() const { return static_cast<int>(conns_.size()); }

  DrConnectionManager& manager(NodeId n);
  const DrConnectionManager& manager(NodeId n) const;

  /// APLV of link `l`, as held by its owning router.
  const lsdb::Aplv& aplv(LinkId l) const;

  /// Connections whose *primary* route traverses `l` (§2.1 PSET, keyed by
  /// connection rather than route).
  std::vector<ConnId> ConnsWithPrimaryOn(LinkId l) const;

  /// Connections whose *backup* route traverses `l`.
  std::vector<ConnId> ConnsWithBackupOn(LinkId l) const;

  /// Zero-copy reverse index views: connection ids in ascending order.
  /// Maintained incrementally on every establish/register/release/
  /// activate — the failure engine walks these instead of scanning every
  /// connection per link. Invalidated by any connection mutation.
  std::span<const ConnId> PrimaryConnsOn(LinkId l) const;
  std::span<const ConnId> BackupConnsOn(LinkId l) const;

  /// Links whose spare pool is below target (overbooked).
  std::vector<LinkId> OverbookedLinks() const;

  // ---- link-state advertisement ------------------------------------------

  /// Publishes the current advertisements (APLV abridgements + bandwidth)
  /// into `db`, stamping the refresh time. Down links advertise zero
  /// bandwidth so no route selection uses them.
  ///
  /// Incremental: the network tracks which links changed (bandwidth-ledger
  /// deltas, APLV touches, up/down flips) since the last publication, and
  /// when `db` provably received every prior publication (checked via its
  /// publish stamp) only the dirty records are rewritten, in place, with
  /// no allocation. Any other database — fresh, foreign, or behind —
  /// gets a full republish. The result is byte-identical to PublishFullTo
  /// (asserted in debug builds).
  void PublishTo(lsdb::LinkStateDb& db, Time now) const;

  /// Unconditionally rewrites every record — the periodic-refresh path,
  /// the reference for the equivalence tests, and the recovery hatch for
  /// externally mutated databases.
  void PublishFullTo(lsdb::LinkStateDb& db, Time now) const;

  /// Rebuilds every APLV from the connection table and asserts it matches
  /// the managers' incremental state, checks ledger invariants and the
  /// spare-pool property (spare == target unless free bandwidth is
  /// exhausted). Test/debug hook; throws CheckError on violation.
  void CheckConsistency() const;

 private:
  void ReconcileOverbooked();

  /// Records that link `l`'s advertised state may have changed since the
  /// last publication. Cheap (bitmap-deduplicated); over-marking is
  /// harmless, missing a mark is a staleness bug — every mutation path
  /// below marks the links it touches.
  void MarkDirty(LinkId l);
  void MarkLinkUpDown(LinkId l, bool up);
  /// Renders link `l`'s advertisement into `rec` in place (no allocation:
  /// the conflict vector is copy-assigned into existing capacity).
  void WriteRecordTo(lsdb::LinkRecord& rec, LinkId l) const;
  void IndexPrimary(ConnId id, const routing::LinkSet& lset);
  void UnindexPrimary(ConnId id, const routing::LinkSet& lset);

  net::Topology topo_;
  NetworkConfig config_;
  net::BandwidthLedger ledger_;
  std::vector<DrConnectionManager> managers_;  // indexed by NodeId
  std::map<ConnId, DrConnection> conns_;
  std::vector<char> link_up_;
  /// Links currently down, ascending (mirror of link_up_).
  std::vector<LinkId> down_links_;
  /// Links whose spare pool could not reach target; swept after releases.
  std::set<LinkId> overbooked_;

  // ---- link → connection reverse indexes (ids ascending) ----------------
  std::vector<std::vector<ConnId>> primary_conns_;  // indexed by LinkId
  std::vector<std::vector<ConnId>> backup_conns_;   // indexed by LinkId

  // ---- dirty-link tracking for incremental publication ------------------
  // Mutable: PublishTo is logically const (it renders state, the network
  // does not change) but consumes the dirty set and advances the stamp.
  mutable std::vector<LinkId> dirty_links_;
  mutable std::vector<char> dirty_flag_;  // dedup bitmap for dirty_links_
  mutable std::uint64_t publish_seq_ = 0;
};

}  // namespace drtp::core
