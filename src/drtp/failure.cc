#include "drtp/failure.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>

#include "common/check.h"
#include "common/error.h"
#include "obs/span.h"

namespace drtp::core {
namespace {

/// The set of links taken down by failing `l` (one, or both halves of the
/// duplex pair under duplex_failures).
std::vector<LinkId> FailedSet(const DrtpNetwork& net, LinkId l) {
  std::vector<LinkId> failed{l};
  if (net.config().duplex_failures) {
    const LinkId rev = net.topology().link(l).reverse;
    if (rev != kInvalidLink) failed.push_back(rev);
  }
  return failed;
}

bool UsesAny(const routing::Path& path, std::span<const LinkId> links) {
  return std::any_of(links.begin(), links.end(),
                     [&](LinkId l) { return path.Contains(l); });
}

int Occurrences(const routing::Path& path, LinkId link) {
  int n = 0;
  for (LinkId l : path.links()) {
    if (l == link) ++n;
  }
  return n;
}

/// True iff `links[i]` did not already appear at an earlier position —
/// capacity checks visit each distinct link of a path exactly once.
bool FirstOccurrence(std::span<const LinkId> links, std::size_t i) {
  for (std::size_t k = 0; k < i; ++k) {
    if (links[k] == links[i]) return false;
  }
  return true;
}

/// Whether promoting `backup` can succeed for a connection whose current
/// primary is `primary`: ActivateBackup releases the old primary and then
/// force-reserves the promoted route from spare+free (= total − prime),
/// so per distinct link the pool plus the connection's own primary
/// release must cover the promoted route's demand. `available` maps a
/// link to its spare+free bandwidth (live ledger or what-if scratch).
template <typename AvailableFn>
bool ActivationFits(const routing::Path& backup, const routing::Path& primary,
                    Bandwidth bw, AvailableFn&& available) {
  const std::span<const LinkId> links = backup.links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    const LinkId l = links[i];
    if (!FirstOccurrence(links, i)) continue;
    const Bandwidth credit = bw * Occurrences(primary, l);
    const Bandwidth need = bw * Occurrences(backup, l);
    if (available(l) + credit < need) return false;
  }
  return true;
}

/// Reusable scratch for the failure sweep: per-link remaining-bandwidth
/// array invalidated by epoch stamp (no O(num_links) clear between links)
/// plus a merge buffer for affected connection ids.
struct EvalScratch {
  explicit EvalScratch(int num_links)
      : remaining(static_cast<std::size_t>(num_links), 0),
        stamp(static_cast<std::size_t>(num_links), 0) {}

  std::vector<Bandwidth> remaining;
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;
  std::vector<ConnId> affected;
};

/// Ascending-id union of the primaries crossing each failed link, built
/// from the network's reverse index into `scratch.affected`. Matches the
/// id-order the full table scan visits affected connections in.
void CollectAffectedPrimaries(const DrtpNetwork& net,
                              std::span<const LinkId> failed_set,
                              std::vector<ConnId>& out) {
  out.clear();
  if (failed_set.size() == 1) {
    const auto conns = net.PrimaryConnsOn(failed_set[0]);
    out.assign(conns.begin(), conns.end());
    return;
  }
  for (LinkId l : failed_set) {
    const auto conns = net.PrimaryConnsOn(l);
    out.insert(out.end(), conns.begin(), conns.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

FailureImpact EvaluateLinkFailureWith(const DrtpNetwork& net,
                                      std::span<const LinkId> failed_set,
                                      EvalScratch& scratch,
                                      FailureImpactDetail* detail = nullptr) {
  // Affected connections in id order; the paper leaves contention order
  // unspecified, id order keeps it deterministic across schemes.
  FailureImpact impact;
  CollectAffectedPrimaries(net, failed_set, scratch.affected);
  if (scratch.affected.empty()) return impact;

  // Remaining bandwidth each link can devote to activations: the spare
  // pool plus whatever is still free. Lazily initialized per epoch.
  ++scratch.epoch;
  const auto available = [&](LinkId l) -> Bandwidth& {
    const auto i = static_cast<std::size_t>(l);
    if (scratch.stamp[i] != scratch.epoch) {
      scratch.stamp[i] = scratch.epoch;
      scratch.remaining[i] = net.ledger().spare(l) + net.ledger().free(l);
    }
    return scratch.remaining[i];
  };

  for (ConnId id : scratch.affected) {
    const DrConnection* conn = net.Find(id);
    DRTP_DCHECK(conn != nullptr);
    ++impact.attempts;
    // Mirror ApplyLinkSetFailure's channel switching exactly: a backup is
    // chosen iff it avoids the failure, every link survives (including
    // ones already down from earlier failures), and the promotion fits
    // once the connection's own primary release is credited. Whether the
    // connection switches or drops, its old primary's bandwidth returns
    // to the pool before later connections contend, in id order.
    const routing::Path* chosen = nullptr;
    for (const routing::Path& backup : conn->backups) {
      if (UsesAny(backup, failed_set)) continue;
      bool up = true;
      for (LinkId l : backup.links()) {
        if (!net.IsLinkUp(l)) {
          up = false;
          break;
        }
      }
      if (!up) continue;
      if (!ActivationFits(backup, conn->primary, conn->bw, available)) {
        continue;
      }
      chosen = &backup;
      break;
    }
    for (LinkId l : conn->primary.links()) available(l) += conn->bw;
    if (chosen != nullptr) {
      for (LinkId l : chosen->links()) available(l) -= conn->bw;
      ++impact.activated;
    }
    if (detail != nullptr) {
      (chosen != nullptr ? detail->activated : detail->dropped).push_back(id);
    }
  }
  return impact;
}

}  // namespace

FailureImpact EvaluateLinkFailure(const DrtpNetwork& net, LinkId failed) {
  const std::vector<LinkId> failed_set = FailedSet(net, failed);
  EvalScratch scratch(net.topology().num_links());
  return EvaluateLinkFailureWith(net, failed_set, scratch);
}

FailureImpactDetail EvaluateLinkFailureDetailed(const DrtpNetwork& net,
                                                LinkId failed) {
  const std::vector<LinkId> failed_set = FailedSet(net, failed);
  EvalScratch scratch(net.topology().num_links());
  FailureImpactDetail detail;
  detail.impact = EvaluateLinkFailureWith(net, failed_set, scratch, &detail);
  return detail;
}

Ratio EvaluateAllSingleLinkFailures(const DrtpNetwork& net) {
  DRTP_OBS_SPAN("drtp.kernel.failure_sweep");
  Ratio ratio;
  const net::Topology& topo = net.topology();
  EvalScratch scratch(topo.num_links());
  LinkId failed_set[2];
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (!net.IsLinkUp(l)) continue;
    std::size_t n = 1;
    failed_set[0] = l;
    // Under duplex failures, count each physical fiber once.
    if (net.config().duplex_failures) {
      const LinkId rev = topo.link(l).reverse;
      if (rev != kInvalidLink) {
        if (rev < l) continue;
        failed_set[n++] = rev;
      }
    }
    const FailureImpact impact =
        EvaluateLinkFailureWith(net, {failed_set, n}, scratch);
    ratio.AddMany(impact.activated, impact.attempts);
  }
  return ratio;
}

FailureImpact EvaluateLinkFailureScan(const DrtpNetwork& net, LinkId failed) {
  const std::vector<LinkId> failed_set = FailedSet(net, failed);

  FailureImpact impact;
  std::unordered_map<LinkId, Bandwidth> remaining;
  const auto available = [&](LinkId l) -> Bandwidth& {
    auto [it, fresh] = remaining.try_emplace(l, 0);
    if (fresh) it->second = net.ledger().spare(l) + net.ledger().free(l);
    return it->second;
  };

  // net.connections() is an ordered map, so this visits the affected
  // connections in the same id order the indexed variant (and the enacted
  // switchover) resolves contention in.
  for (const auto& [id, conn] : net.connections()) {
    if (!UsesAny(conn.primary, failed_set)) continue;
    ++impact.attempts;
    const routing::Path* chosen = nullptr;
    for (const routing::Path& backup : conn.backups) {
      if (UsesAny(backup, failed_set)) continue;
      bool up = true;
      for (LinkId l : backup.links()) {
        if (!net.IsLinkUp(l)) {
          up = false;
          break;
        }
      }
      if (!up) continue;
      if (!ActivationFits(backup, conn.primary, conn.bw, available)) {
        continue;
      }
      chosen = &backup;
      break;
    }
    for (LinkId l : conn.primary.links()) available(l) += conn.bw;
    if (chosen != nullptr) {
      for (LinkId l : chosen->links()) available(l) -= conn.bw;
      ++impact.activated;
    }
  }
  return impact;
}

Ratio EvaluateAllSingleLinkFailuresScan(const DrtpNetwork& net) {
  Ratio ratio;
  const net::Topology& topo = net.topology();
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (!net.IsLinkUp(l)) continue;
    if (net.config().duplex_failures) {
      const LinkId rev = topo.link(l).reverse;
      if (rev != kInvalidLink && rev < l) continue;
    }
    const FailureImpact impact = EvaluateLinkFailureScan(net, l);
    ratio.AddMany(impact.activated, impact.attempts);
  }
  return ratio;
}

SwitchoverReport ApplyLinkFailure(DrtpNetwork& net, LinkId failed, Time now,
                                  RoutingScheme* reroute,
                                  lsdb::LinkStateDb* db) {
  const LinkId one[1] = {failed};
  return ApplyLinkSetFailure(net, one, now, reroute, db);
}

SwitchoverReport ApplyLinkSetFailure(DrtpNetwork& net,
                                     std::span<const LinkId> links, Time now,
                                     RoutingScheme* reroute,
                                     lsdb::LinkStateDb* db) {
  DRTP_OBS_SPAN("drtp.kernel.apply_failure");
  SwitchoverReport report;
  // Expand duplex reverses and drop members already down: the correlated
  // set is whatever actually transitions up->down at `now`.
  std::vector<LinkId> failed_set;
  failed_set.reserve(links.size() * 2);
  for (LinkId l : links) {
    DRTP_CHECK(l >= 0 && l < net.topology().num_links());
    if (!net.IsLinkUp(l)) continue;
    failed_set.push_back(l);
    if (net.config().duplex_failures) {
      const LinkId rev = net.topology().link(l).reverse;
      if (rev != kInvalidLink && net.IsLinkUp(rev)) failed_set.push_back(rev);
    }
  }
  std::sort(failed_set.begin(), failed_set.end());
  failed_set.erase(std::unique(failed_set.begin(), failed_set.end()),
                   failed_set.end());
  if (failed_set.empty()) return report;
  for (LinkId l : failed_set) net.SetLinkDown(l);
  // Topology-derived caches (BF distance tables) must reflect the failure
  // before any step-4 reroute floods.
  if (reroute != nullptr) reroute->OnTopologyChanged(net);

  // Collect the affected ids first (from the reverse indexes — mutations
  // below invalidate both iteration and the indexes themselves).
  std::vector<ConnId> primary_hit;
  CollectAffectedPrimaries(net, failed_set, primary_hit);
  std::vector<ConnId> backup_hit;
  for (LinkId l : failed_set) {
    const auto conns = net.BackupConnsOn(l);
    backup_hit.insert(backup_hit.end(), conns.begin(), conns.end());
  }
  std::sort(backup_hit.begin(), backup_hit.end());
  backup_hit.erase(std::unique(backup_hit.begin(), backup_hit.end()),
                   backup_hit.end());
  // A connection whose primary is hit is handled by channel switching,
  // not backup release.
  std::erase_if(backup_hit, [&](ConnId id) {
    return std::binary_search(primary_hit.begin(), primary_hit.end(), id);
  });

  // Broken backups are released first (their spare claims must not block
  // activations), per the failure-reporting step. Surviving backups of the
  // same connection stay registered.
  for (ConnId id : backup_hit) {
    const DrConnection* conn = net.Find(id);
    DRTP_CHECK(conn != nullptr);
    for (std::size_t i = conn->backups.size(); i-- > 0;) {
      if (UsesAny(conn->backups[i], failed_set)) net.ReleaseBackupAt(id, i);
    }
    report.backups_lost.push_back(id);
  }

  // Channel switching in id order: promote the first surviving backup
  // that can actually be activated. "Surviving" means every link is up —
  // the just-failed set plus any link still down from earlier failures
  // (registered backups normally never traverse down links, but the
  // activation must not rely on that). On top of that the promotion must
  // fit: previously the first all-up backup was chosen blindly, and when
  // its ActivateBackup lost the spare-pool contention the connection was
  // dropped even though a later backup had room — an outcome the what-if
  // evaluation (which does model capacity) could never predict.
  const auto all_links_up = [&](const routing::Path& path) {
    for (LinkId l : path.links()) {
      if (!net.IsLinkUp(l)) return false;
    }
    return true;
  };
  const auto pool = [&](LinkId l) {
    return net.ledger().spare(l) + net.ledger().free(l);
  };
  for (ConnId id : primary_hit) {
    const DrConnection* conn = net.Find(id);
    DRTP_CHECK(conn != nullptr);
    std::size_t usable = conn->backups.size();
    for (std::size_t i = 0; i < conn->backups.size(); ++i) {
      if (all_links_up(conn->backups[i]) &&
          ActivationFits(conn->backups[i], conn->primary, conn->bw, pool)) {
        usable = i;
        break;
      }
    }
    if (usable == conn->backups.size()) {
      net.ReleaseConnection(id);
      report.dropped.push_back(id);
      continue;
    }
    if (net.ActivateBackup(id, usable, now)) {
      report.recovered.push_back(id);
    } else {
      report.dropped.push_back(id);  // ActivateBackup already cleaned up
    }
  }

  // Step 4, resource reconfiguration: re-protect every connection left
  // without a backup.
  if (reroute != nullptr && db != nullptr) {
    std::vector<ConnId> unprotected;
    for (ConnId id : report.recovered) unprotected.push_back(id);
    for (ConnId id : report.backups_lost) unprotected.push_back(id);
    std::sort(unprotected.begin(), unprotected.end());
    for (ConnId id : unprotected) {
      const DrConnection* conn = net.Find(id);
      if (conn == nullptr || conn->has_backup()) continue;
      net.PublishTo(*db, now);
      auto backup =
          reroute->SelectBackupFor(net, *db, conn->primary, conn->bw);
      // Schemes shun rather than forbid primary links, so under scarcity
      // the cheapest "backup" can be the promoted primary itself. Partial
      // overlap is the usual penalized tradeoff, but a backup covering
      // every primary link protects nothing — degrade instead and let the
      // retry loop re-protect once a real alternative appears.
      if (backup.has_value() &&
          backup->OverlapCount(conn->primary) < conn->primary.hops() &&
          !UsesAny(*backup, net.down_links())) {
        net.RegisterBackup(id, *backup);
        report.rerouted.push_back(id);
      }
    }
  }
  return report;
}

std::vector<LinkId> IncidentLinks(const net::Topology& topo, NodeId node) {
  DRTP_CHECK(node >= 0 && node < topo.num_nodes());
  std::vector<LinkId> incident;
  const net::Node& n = topo.node(node);
  incident.reserve(n.out_links.size() + n.in_links.size());
  incident.insert(incident.end(), n.out_links.begin(), n.out_links.end());
  incident.insert(incident.end(), n.in_links.begin(), n.in_links.end());
  std::sort(incident.begin(), incident.end());
  incident.erase(std::unique(incident.begin(), incident.end()),
                 incident.end());
  return incident;
}

SwitchoverReport ApplyNodeFailure(DrtpNetwork& net, NodeId node, Time now,
                                  RoutingScheme* reroute,
                                  lsdb::LinkStateDb* db) {
  return ApplyLinkSetFailure(net, IncidentLinks(net.topology(), node), now,
                             reroute, db);
}

SwitchoverReport ApplySrlgFailure(DrtpNetwork& net, SrlgId srlg, Time now,
                                  RoutingScheme* reroute,
                                  lsdb::LinkStateDb* db) {
  // The group id typically comes straight from a scenario file or an RPC,
  // so an out-of-range value is bad *input*, not a broken invariant —
  // reject it as ParseError here rather than letting LinksInSrlg's
  // DRTP_CHECK fire.
  if (srlg < 0 || srlg >= net.topology().num_srlgs()) {
    throw ParseError("fail-srlg: group " + std::to_string(srlg) +
                     " out of range [0, " +
                     std::to_string(net.topology().num_srlgs()) + ")");
  }
  return ApplyLinkSetFailure(net, net.topology().LinksInSrlg(srlg), now,
                             reroute, db);
}

Ratio EvaluateSrlgSurvival(const DrtpNetwork& net) {
  Ratio r;
  const net::Topology& topo = net.topology();
  if (!topo.has_srlgs()) return r;
  std::vector<SrlgId> primary_groups;
  std::vector<SrlgId> backup_groups;
  for (const auto& [id, conn] : net.connections()) {
    if (!conn.has_backup()) continue;
    primary_groups.clear();
    for (const LinkId l : conn.primary.links()) {
      const SrlgId g = topo.srlg(l);
      if (g != kInvalidSrlg) primary_groups.push_back(g);
    }
    std::sort(primary_groups.begin(), primary_groups.end());
    primary_groups.erase(
        std::unique(primary_groups.begin(), primary_groups.end()),
        primary_groups.end());
    if (primary_groups.empty()) continue;
    backup_groups.clear();
    for (const routing::Path& b : conn.backups) {
      for (const LinkId l : b.links()) {
        const SrlgId g = topo.srlg(l);
        if (g != kInvalidSrlg) backup_groups.push_back(g);
      }
    }
    std::sort(backup_groups.begin(), backup_groups.end());
    for (const SrlgId g : primary_groups) {
      r.Add(!std::binary_search(backup_groups.begin(), backup_groups.end(),
                                g));
    }
  }
  return r;
}

}  // namespace drtp::core
